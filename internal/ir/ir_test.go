package ir

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Const: "const", Send: "send", SendCommit: "sendcommit",
		Recv: "recv", Alt: "alt", NewRecord: "newrecord", Unlink: "unlink",
		CastReuse: "castreuse", Halt: "halt", GetIndex: "getindex",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestIsBlocking(t *testing.T) {
	for _, op := range []Op{Send, Recv, Alt} {
		if !op.IsBlocking() {
			t.Errorf("%s should be blocking", op)
		}
	}
	for _, op := range []Op{SendCommit, Const, Jump, Halt, Link} {
		if op.IsBlocking() {
			t.Errorf("%s should not be blocking", op)
		}
	}
}

func TestFormatPat(t *testing.T) {
	p := &Pat{Kind: PatUnion, Tag: 1, Elems: []*Pat{
		{Kind: PatRecord, Elems: []*Pat{
			{Kind: PatSelf},
			{Kind: PatConst, Val: 7},
			{Kind: PatBind, Slot: 3},
			{Kind: PatDynEq, Slot: 2},
			{Kind: PatAny},
		}},
	}}
	got := FormatPat(p)
	want := "{ tag1 |> { @, 7, $3, =2, _ } }"
	if got != want {
		t.Errorf("FormatPat = %q, want %q", got, want)
	}
}

func TestDisasmRendersEverything(t *testing.T) {
	p := &Proc{
		ID:        0,
		Name:      "demo",
		NumLocals: 2,
		MaxStack:  3,
		LocalName: []string{"x", ""},
		Code: []Instr{
			{Op: Const, Val: 42},
			{Op: StoreLocal, A: 0},
			{Op: LoadLocal, A: 0},
			{Op: Send, A: 1, B: FlagFreeAfter},
			{Op: Recv, A: 2, B: 0},
			{Op: Alt, A: 0},
			{Op: NewRecord, A: 3, B: 2, Val: 1},
			{Op: Assert, A: 0},
			{Op: Jump, A: 0},
			{Op: Halt},
		},
		Ports: []Port{{Chan: 2, Pat: &Pat{Kind: PatBind, Slot: 1}}},
		Alts: []AltDef{{Arms: []AltArm{
			{GuardSlot: -1, IsSend: false, Chan: 2, Port: 0, BodyPC: 9, EvalPC: -1},
		}}},
	}
	d := Disasm(p)
	for _, want := range []string{
		"process demo", "locals=2", "maxstack=3",
		"const 42", "storelocal 0(x)", "loadlocal 0(x)",
		"send chan=1 freeafter", "recv chan=2 port=0", "alt #0",
		"newrecord type=3 n=2 absorb=1", "assert #0", "jump -> 0", "halt",
		"port 0: chan=2 pat=$1",
		"arm 0: recv chan=2",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestProgramLookups(t *testing.T) {
	prog := &Program{
		Channels: []*Channel{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}},
		Procs:    []*Proc{{ID: 0, Name: "p"}, {ID: 1, Name: "q"}},
	}
	if prog.ChannelByName("b").ID != 1 || prog.ChannelByName("zz") != nil {
		t.Error("ChannelByName wrong")
	}
	if prog.ProcByName("q").ID != 1 || prog.ProcByName("zz") != nil {
		t.Error("ProcByName wrong")
	}
}
