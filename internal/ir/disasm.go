package ir

import (
	"fmt"
	"strings"
)

// Disasm renders a process's code as human-readable assembly, one
// instruction per line, prefixed by the pc.
func Disasm(p *Proc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s (locals=%d, maxstack=%d)\n", p.Name, p.NumLocals, p.MaxStack)
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%4d  %s\n", pc, FormatInstr(p, in))
	}
	for i, a := range p.Alts {
		fmt.Fprintf(&b, "alt %d:\n", i)
		for j, arm := range a.Arms {
			dir := "recv"
			if arm.IsSend {
				dir = "send"
			}
			fmt.Fprintf(&b, "  arm %d: %s chan=%d guard=%d body=%d eval=%d port=%d\n",
				j, dir, arm.Chan, arm.GuardSlot, arm.BodyPC, arm.EvalPC, arm.Port)
		}
	}
	for i, pt := range p.Ports {
		fmt.Fprintf(&b, "port %d: chan=%d pat=%s\n", i, pt.Chan, FormatPat(pt.Pat))
	}
	return b.String()
}

// FormatInstr renders one instruction.
func FormatInstr(p *Proc, in Instr) string {
	name := func(slot int) string {
		if p != nil && slot >= 0 && slot < len(p.LocalName) && p.LocalName[slot] != "" {
			return fmt.Sprintf("%d(%s)", slot, p.LocalName[slot])
		}
		return fmt.Sprintf("%d", slot)
	}
	switch in.Op {
	case Const:
		return fmt.Sprintf("const %d", in.Val)
	case LoadLocal, StoreLocal:
		return fmt.Sprintf("%s %s", in.Op, name(in.A))
	case Jump, JumpIfFalse, JumpIfTrue:
		return fmt.Sprintf("%s -> %d", in.Op, in.A)
	case NewRecord:
		return fmt.Sprintf("newrecord type=%d n=%d absorb=%b", in.A, in.B, in.Val)
	case NewUnion:
		return fmt.Sprintf("newunion type=%d tag=%d absorb=%b", in.A, in.B, in.Val)
	case NewArray:
		return fmt.Sprintf("newarray type=%d", in.A)
	case GetField, SetField:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case UnionGet:
		return fmt.Sprintf("unionget tag=%d", in.A)
	case CastCopy, CastReuse:
		return fmt.Sprintf("%s type=%d", in.Op, in.A)
	case Assert:
		return fmt.Sprintf("assert #%d", in.A)
	case Send, SendCommit:
		s := fmt.Sprintf("%s chan=%d", in.Op, in.A)
		if in.B&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case Recv:
		return fmt.Sprintf("recv chan=%d port=%d", in.A, in.B)
	case Alt:
		return fmt.Sprintf("alt #%d", in.A)
	default:
		return in.Op.String()
	}
}

// DisasmFused renders a process's fused translation as human-readable
// assembly, one superinstruction per line, prefixed by the fused index
// and the base-pc range it covers. It is the fused-engine counterpart of
// Disasm, so -dump-ir stays usable after fusion.
func DisasmFused(p *Proc, fp *FusedProc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s (fused: %d instrs over %d base)\n", p.Name, len(fp.Code), len(p.Code))
	for i, in := range fp.Code {
		fmt.Fprintf(&b, "%4d  [%d", i, in.Base)
		if in.N > 1 {
			fmt.Fprintf(&b, "-%d", int(in.Base)+int(in.N)-1)
		}
		fmt.Fprintf(&b, "]\t%s\n", FormatFInstr(p, in))
	}
	// The base-pc -> fused-index side table, in ascending base-pc order
	// (Map is indexed by pc, so iteration order is deterministic and
	// goldens cannot churn). Interior pcs (-1) are omitted.
	b.WriteString("map:")
	for pc, idx := range fp.Map {
		if idx >= 0 {
			fmt.Fprintf(&b, " %d->%d", pc, idx)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// FormatFInstr renders one fused instruction.
func FormatFInstr(p *Proc, in FInstr) string {
	name := func(slot int32) string {
		if p != nil && slot >= 0 && int(slot) < len(p.LocalName) && p.LocalName[slot] != "" {
			return fmt.Sprintf("%d(%s)", slot, p.LocalName[slot])
		}
		return fmt.Sprintf("%d", slot)
	}
	typeName := func() string {
		if in.Type != nil {
			return in.Type.String()
		}
		return "?"
	}
	sense := func() string {
		if in.Sense {
			return "true"
		}
		return "false"
	}
	switch in.Op {
	case FConst:
		return fmt.Sprintf("fconst %d", in.Val)
	case FLoad, FStore:
		return fmt.Sprintf("%s %s", in.Op, name(in.A))
	case FJump, FJumpFalse, FJumpTrue:
		return fmt.Sprintf("%s -> %d", in.Op, in.A)
	case FNewRecord:
		return fmt.Sprintf("fnewrecord type=%s n=%d absorb=%b", typeName(), in.B, in.Val)
	case FNewUnion:
		return fmt.Sprintf("fnewunion type=%s tag=%d absorb=%b", typeName(), in.B, in.Val)
	case FNewArray:
		return fmt.Sprintf("fnewarray type=%s", typeName())
	case FGetField, FSetField:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case FUnionGet:
		return fmt.Sprintf("funionget tag=%d", in.A)
	case FCastCopy, FCastReuse:
		return fmt.Sprintf("%s type=%s", in.Op, typeName())
	case FAssert:
		return fmt.Sprintf("fassert #%d", in.A)
	case FSend, FSendCommit:
		s := fmt.Sprintf("%s chan=%d", in.Op, in.A)
		if in.B&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case FRecv:
		return fmt.Sprintf("frecv chan=%d port=%d", in.A, in.B)
	case FAlt:
		return fmt.Sprintf("falt #%d", in.A)
	case FIncrLocal:
		return fmt.Sprintf("fincrlocal %s += %d", name(in.A), in.Val)
	case FLCCmpBr:
		return fmt.Sprintf("flccmpbr %s %s %d ? jump(%s) -> %d", name(in.A), in.Sub, in.Val, sense(), in.B)
	case FLLCmpBr:
		return fmt.Sprintf("fllcmpbr %s %s %s ? jump(%s) -> %d", name(in.A), in.Sub, name(in.C), sense(), in.B)
	case FCmpBr:
		return fmt.Sprintf("fcmpbr %s ? jump(%s) -> %d", in.Sub, sense(), in.B)
	case FLCBin:
		return fmt.Sprintf("flcbin %s %s %d", name(in.A), in.Sub, in.Val)
	case FLLBin:
		return fmt.Sprintf("fllbin %s %s %s", name(in.A), in.Sub, name(in.C))
	case FLCBinSt:
		return fmt.Sprintf("flcbinst %s = %s %s %d", name(in.B), name(in.A), in.Sub, in.Val)
	case FLLBinSt:
		return fmt.Sprintf("fllbinst %s = %s %s %s", name(in.B), name(in.A), in.Sub, name(in.C))
	case FConstSt:
		return fmt.Sprintf("fconstst %s = %d", name(in.B), in.Val)
	case FMove:
		return fmt.Sprintf("fmove %s = %s", name(in.B), name(in.A))
	case FLoadField:
		return fmt.Sprintf("floadfield %s.%d", name(in.A), in.B)
	case FLoadSend:
		s := fmt.Sprintf("floadsend %s chan=%d", name(in.A), in.B)
		if in.C&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case FConstSend:
		s := fmt.Sprintf("fconstsend %d chan=%d", in.Val, in.B)
		if in.C&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case FSendDir:
		s := fmt.Sprintf("fsenddir chan=%d partner=%d", in.A, in.C)
		if in.B&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case FRecvDir:
		return fmt.Sprintf("frecvdir chan=%d port=%d partner=%d", in.A, in.B, in.C)
	case FXferRec:
		s := fmt.Sprintf("fxferrec type=%s n=%d absorb=%b chan=%d partner=%d",
			typeName(), in.B, in.Val, in.A, in.C)
		if in.Sense {
			s += " freeafter"
		}
		return s
	default:
		return in.Op.String()
	}
}

// FormatPat renders a runtime pattern.
func FormatPat(p *Pat) string {
	var b strings.Builder
	fmtPat(&b, p)
	return b.String()
}

func fmtPat(b *strings.Builder, p *Pat) {
	switch p.Kind {
	case PatAny:
		b.WriteByte('_')
	case PatBind:
		fmt.Fprintf(b, "$%d", p.Slot)
	case PatConst:
		fmt.Fprintf(b, "%d", p.Val)
	case PatSelf:
		b.WriteByte('@')
	case PatDynEq:
		fmt.Fprintf(b, "=%d", p.Slot)
	case PatRecord:
		b.WriteString("{ ")
		for i, e := range p.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			fmtPat(b, e)
		}
		b.WriteString(" }")
	case PatUnion:
		fmt.Fprintf(b, "{ tag%d |> ", p.Tag)
		fmtPat(b, p.Elems[0])
		b.WriteString(" }")
	}
}
