package ir

import (
	"fmt"
	"strings"
)

// Disasm renders a process's code as human-readable assembly, one
// instruction per line, prefixed by the pc.
func Disasm(p *Proc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s (locals=%d, maxstack=%d)\n", p.Name, p.NumLocals, p.MaxStack)
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%4d  %s\n", pc, FormatInstr(p, in))
	}
	for i, a := range p.Alts {
		fmt.Fprintf(&b, "alt %d:\n", i)
		for j, arm := range a.Arms {
			dir := "recv"
			if arm.IsSend {
				dir = "send"
			}
			fmt.Fprintf(&b, "  arm %d: %s chan=%d guard=%d body=%d eval=%d port=%d\n",
				j, dir, arm.Chan, arm.GuardSlot, arm.BodyPC, arm.EvalPC, arm.Port)
		}
	}
	for i, pt := range p.Ports {
		fmt.Fprintf(&b, "port %d: chan=%d pat=%s\n", i, pt.Chan, FormatPat(pt.Pat))
	}
	return b.String()
}

// FormatInstr renders one instruction.
func FormatInstr(p *Proc, in Instr) string {
	name := func(slot int) string {
		if p != nil && slot >= 0 && slot < len(p.LocalName) && p.LocalName[slot] != "" {
			return fmt.Sprintf("%d(%s)", slot, p.LocalName[slot])
		}
		return fmt.Sprintf("%d", slot)
	}
	switch in.Op {
	case Const:
		return fmt.Sprintf("const %d", in.Val)
	case LoadLocal, StoreLocal:
		return fmt.Sprintf("%s %s", in.Op, name(in.A))
	case Jump, JumpIfFalse, JumpIfTrue:
		return fmt.Sprintf("%s -> %d", in.Op, in.A)
	case NewRecord:
		return fmt.Sprintf("newrecord type=%d n=%d absorb=%b", in.A, in.B, in.Val)
	case NewUnion:
		return fmt.Sprintf("newunion type=%d tag=%d absorb=%b", in.A, in.B, in.Val)
	case NewArray:
		return fmt.Sprintf("newarray type=%d", in.A)
	case GetField, SetField:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case UnionGet:
		return fmt.Sprintf("unionget tag=%d", in.A)
	case CastCopy, CastReuse:
		return fmt.Sprintf("%s type=%d", in.Op, in.A)
	case Assert:
		return fmt.Sprintf("assert #%d", in.A)
	case Send, SendCommit:
		s := fmt.Sprintf("%s chan=%d", in.Op, in.A)
		if in.B&FlagFreeAfter != 0 {
			s += " freeafter"
		}
		return s
	case Recv:
		return fmt.Sprintf("recv chan=%d port=%d", in.A, in.B)
	case Alt:
		return fmt.Sprintf("alt #%d", in.A)
	default:
		return in.Op.String()
	}
}

// FormatPat renders a runtime pattern.
func FormatPat(p *Pat) string {
	var b strings.Builder
	fmtPat(&b, p)
	return b.String()
}

func fmtPat(b *strings.Builder, p *Pat) {
	switch p.Kind {
	case PatAny:
		b.WriteByte('_')
	case PatBind:
		fmt.Fprintf(b, "$%d", p.Slot)
	case PatConst:
		fmt.Fprintf(b, "%d", p.Val)
	case PatSelf:
		b.WriteByte('@')
	case PatDynEq:
		fmt.Fprintf(b, "=%d", p.Slot)
	case PatRecord:
		b.WriteString("{ ")
		for i, e := range p.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			fmtPat(b, e)
		}
		b.WriteString(" }")
	case PatUnion:
		fmt.Fprintf(b, "{ tag%d |> ", p.Tag)
		fmtPat(b, p.Elems[0])
		b.WriteString(" }")
	}
}
