// Package ir defines the stack-machine intermediate representation that
// ESP processes compile to.
//
// The design mirrors §6.1 of the paper: a process is a state machine that
// needs no call stack — only a program counter — so a context switch is a
// few instructions. Every blocking point (Send, Recv, Alt) is an explicit
// instruction; between blocking points execution is deterministic and
// atomic with respect to other processes, which both the runtime scheduler
// (non-preemptive) and the model checker (large-step transitions) exploit.
//
// Reference counting follows §4.4/§6.2:
//
//   - allocation sets the count to 1;
//   - constructing a record/union around a *borrowed* child (a variable)
//     increments the child; a *fresh temporary* child (a literal just
//     built) is absorbed — its allocation reference transfers to the
//     parent (the AbsorbMask operand encodes which children are fresh);
//   - freeing an object recursively unlinks its children;
//   - rendezvous transfer bumps the root (the receiver's semantic deep
//     copy), pattern binding bumps each bound reference component, and a
//     destructuring receiver releases the root again; a sender whose value
//     was a fresh temporary releases it after transfer (FlagFreeAfter).
//
// The net effect is the paper's "deep copy that never actually copies".
package ir

import (
	"esplang/internal/token"
	"esplang/internal/types"
)

// Op is an IR opcode.
type Op uint8

// IR opcodes.
const (
	Nop Op = iota

	// Values and locals.
	Const      // push Val (int or bool encoded as 0/1)
	SelfID     // push the process instance id (@)
	LoadLocal  // push locals[A]
	StoreLocal // locals[A] = pop
	Dup        // duplicate top of stack
	Pop        // discard top of stack

	// Arithmetic and logic (operands popped right-then-left).
	Neg
	Not
	Add
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Le
	Gt
	Ge

	// Control flow.
	Jump        // pc = A
	JumpIfFalse // if !pop { pc = A }
	JumpIfTrue  // if pop { pc = A }

	// Heap.
	NewRecord // A = typeID, B = nfields, Val = absorb mask; pops B values
	NewUnion  // A = typeID, B = tag, Val = absorb mask (bit 0); pops payload
	NewArray  // A = typeID; pops init then count; pushes array
	GetField  // A = field index; pops record, pushes field
	SetField  // A = field index; pops value then record
	GetIndex  // pops index then array, pushes element
	SetIndex  // pops value, index, array
	UnionGet  // A = expected tag; pops union, pushes payload (tag must match)

	// Reference counting.
	Link      // pops ref; count++
	Unlink    // pops ref; count--, free at 0 (recursively unlinking children)
	CastCopy  // A = result typeID; pops ref; pushes fresh shallow copy (children linked)
	CastReuse // A = result typeID; pops ref; pushes same object retyped (opt only)

	// Checks.
	Assert // A = assert id; pops bool; failure stops the machine
	Halt   // process terminates

	// Communication (blocking points).
	Send       // A = channel id, B = flags; pops value, rendezvous
	SendCommit // A = channel id, B = flags; like Send but the partner is pre-committed (alt out arms)
	Recv       // A = channel id, B = port index (process-local); binds pattern on transfer
	Alt        // A = alt table index (process-local)
)

// Send flags (field B of Send/SendCommit).
const (
	// FlagFreeAfter marks the sent value as a fresh temporary: the sender
	// releases its allocation reference after the transfer.
	FlagFreeAfter = 1 << iota
)

var opNames = [...]string{
	Nop: "nop", Const: "const", SelfID: "selfid",
	LoadLocal: "loadlocal", StoreLocal: "storelocal", Dup: "dup", Pop: "pop",
	Neg: "neg", Not: "not",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Jump: "jump", JumpIfFalse: "jumpfalse", JumpIfTrue: "jumptrue",
	NewRecord: "newrecord", NewUnion: "newunion", NewArray: "newarray",
	GetField: "getfield", SetField: "setfield",
	GetIndex: "getindex", SetIndex: "setindex", UnionGet: "unionget",
	Link: "link", Unlink: "unlink", CastCopy: "castcopy", CastReuse: "castreuse",
	Assert: "assert", Halt: "halt",
	Send: "send", SendCommit: "sendcommit", Recv: "recv", Alt: "alt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsBlocking reports whether the opcode is a potential blocking point
// (i.e. an implicit state of the state machine, §4.3).
func (o Op) IsBlocking() bool {
	switch o {
	case Send, Recv, Alt:
		return true
	}
	return false
}

// Instr is one IR instruction.
type Instr struct {
	Op  Op
	A   int
	B   int
	Val int64
	Pos token.Pos
}

// PatKind classifies runtime pattern nodes.
type PatKind uint8

// Runtime pattern node kinds.
const (
	PatAny    PatKind = iota // matches anything, binds nothing
	PatBind                  // matches anything, stores into local Slot
	PatConst                 // value must equal Val
	PatSelf                  // value must equal the receiving process's instance id
	PatDynEq                 // value must equal locals[Slot]
	PatRecord                // positional subpatterns
	PatUnion                 // Tag must match; one subpattern for the payload
)

// Pat is a compiled runtime pattern (the dispatch and binding tree of one
// receive port).
type Pat struct {
	Kind  PatKind
	Slot  int
	Val   int64
	Tag   int
	Elems []*Pat
}

// Port is one receive pattern registration on a channel.
type Port struct {
	Chan int // channel id
	Pat  *Pat
}

// AltArm is one case of a compiled alt statement.
type AltArm struct {
	GuardSlot int  // local holding the precomputed guard, or -1
	IsSend    bool // direction
	Chan      int  // channel id
	Port      int  // receive arms: process-local port index
	EvalPC    int  // send arms: start of the value-evaluation code (ends in SendCommit)
	BodyPC    int  // start of the case body
	// OutPat is the statically known shape of a send arm's value
	// (literal parts become constant/tag tests, dynamic parts are Any).
	// Readiness checks use it to skip receivers whose patterns cannot
	// match, so union-literal out arms dispatch correctly even though the
	// value is only evaluated after the rendezvous commits (§6.1).
	OutPat *Pat
	// Pos locates the arm's in/out clause in the source, for per-arm
	// diagnostics from the static analyses.
	Pos token.Pos
}

// AltDef is a compiled alt statement.
type AltDef struct {
	Arms []AltArm
	Pos  token.Pos
}

// AssertInfo describes an assert site for diagnostics.
type AssertInfo struct {
	Pos  token.Pos
	Expr string
}

// Proc is a compiled process.
type Proc struct {
	ID        int
	Name      string
	Code      []Instr
	NumLocals int
	MaxStack  int
	Ports     []Port
	Alts      []AltDef
	LocalName []string // slot -> source name ("" for compiler temps)
	// LocalType records the declared type of each source-level local
	// (nil for compiler temps, which only ever hold scalars). The static
	// analyses use it to restrict ownership tracking to reference slots.
	LocalType []*types.Type
}

// ExtDir mirrors ast.ExtDir without importing the ast package downstream.
type ExtDir int

// External channel directions.
const (
	ExtNone ExtDir = iota
	ExtReader
	ExtWriter
)

// IfaceCase is one named pattern of an external channel interface.
type IfaceCase struct {
	Name string
	Pat  *Pat // with PatBind slots numbered by parameter position
	// ParamTypes lists the bound parameter types in slot order.
	ParamTypes []*types.Type
}

// Channel is a compiled channel.
type Channel struct {
	ID        int
	Name      string
	Elem      *types.Type
	Ext       ExtDir
	IfaceName string
	Cases     []IfaceCase // external interface cases, if any
	// AllPortsCover reports that every receive pattern on this channel
	// matches any value of the element type, so "some receiver waiting"
	// implies "a matching receiver is waiting" (enables the postponed
	// evaluation of alt out arms, §6.1).
	AllPortsCover bool
}

// Program is a fully compiled ESP program.
type Program struct {
	Name     string
	Universe *types.Universe
	Channels []*Channel
	Procs    []*Proc
	Asserts  []AssertInfo
	// Source is the original ESP text, retained for diagnostics and the
	// line-count reports.
	Source string
	// File is the path the source was read from ("" when compiled from
	// memory). Faults, model-checker traces, and the C and Promela
	// backends use it to report file:line locations.
	File string
	// Fused caches the fused-engine translation of every process (see
	// fused.go). The optimizer driver populates it after its final
	// rewrite; nil means not (or no longer) translated, and vm.New then
	// fuses locally without touching the program.
	Fused []*FusedProc
	// Schedule is the static rendezvous schedule the optimizer's
	// FuseProcesses pass computed (see schedule.go); nil when process
	// fusion is off or the program has not been optimized.
	Schedule *Schedule
	// FusedSched caches the schedule-aware translation with
	// direct-transfer instructions at statically-matched sites. Only
	// EngineProcFused machines execute it; it is always paired with
	// Schedule.
	FusedSched []*FusedProc
	// Indep is the whole-program transition-independence table (see
	// independence.go); nil when the program has not been optimized. The
	// model checker recomputes it on demand when partial-order reduction
	// is requested on an unoptimized program.
	Indep *Independence
}

// ChannelByName returns the named channel or nil.
func (p *Program) ChannelByName(name string) *Channel {
	for _, c := range p.Channels {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ProcByName returns the named process or nil.
func (p *Program) ProcByName(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}
