package vmmc

import (
	"fmt"
	"sync"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/obs"
	"esplang/internal/types"
	"esplang/internal/vm"
)

// ESPFirmware runs the ESP VMMC firmware (espsrc.go) on the ESP virtual
// machine, bridged to the simulated NIC hardware. The bridge is the Go
// analogue of the paper's ~3000 lines of programmer-supplied helper C:
// device-register access, DMA initiation, packet marshalling and
// unmarshalling, and the notification queue (§4.6).
type ESPFirmware struct {
	m *vm.Machine
	b *espBridge

	// Simulated-time anchor for VM trace timestamps: at the start of each
	// firmware run the NIC clock and the cycle meter are recorded, so the
	// VM clock can place every event at runStartNs plus the nanoseconds
	// the cycles consumed since then represent.
	runStartNs     int64
	runStartCycles int64
}

// maxLiveObjects bounds the firmware heap: if the ESP code leaked, long
// benchmark runs would fault, which is exactly the §5.2 leak detector.
const maxLiveObjects = 512

// Engine selects the VM interpreter the ESP firmware runs on (fused by
// default). vmmcbench's -engine flag flips it for differential runs; the
// latency figures are engine-independent because both engines charge the
// same cycle cost model.
var Engine = vm.EngineFused

// Metrics, when non-nil, is attached to every cluster NewCluster builds
// (sim-kernel and firmware-VM instruments, no tracer or profiler). The
// benchmark drivers construct fresh clusters per iteration deep inside
// their loops, so a package hook — like Engine above — is how a
// long-running campaign (vmmcbench -telemetry) aggregates them all into
// one scrapeable registry.
var Metrics *obs.Metrics

// fwCache caches compiled firmware programs by NIC configuration:
// benchmark loops construct a fresh NIC pair (and firmware) per
// iteration, and both recompiling the identical program and even
// re-rendering its source text dominated their profiles. nic.Config is
// all scalar fields, so it is a valid map key; a compiled Program is
// immutable at runtime (machines copy what they mutate), so sharing one
// across firmware instances is safe.
var fwCache sync.Map // nic.Config -> *esplang.Program

func compileFirmware(cfg nic.Config) (*esplang.Program, error) {
	if p, ok := fwCache.Load(cfg); ok {
		return p.(*esplang.Program), nil
	}
	prog, err := esplang.Compile(ESPSource(cfg), esplang.CompileOptions{Name: "vmmcESP"})
	if err != nil {
		return nil, fmt.Errorf("vmmc: ESP firmware does not compile: %w", err)
	}
	if prev, loaded := fwCache.LoadOrStore(cfg, prog); loaded {
		return prev.(*esplang.Program), nil
	}
	return prog, nil
}

// NewESPFirmware compiles the ESP firmware for the NIC's configuration
// (cached per configuration) and binds its external channels to the
// hardware.
func NewESPFirmware(n *nic.NIC) (*ESPFirmware, error) {
	prog, err := compileFirmware(n.Cfg)
	if err != nil {
		return nil, err
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: maxLiveObjects, Engine: Engine})

	b := &espBridge{n: n, m: m}
	b.userT = prog.IR.ChannelByName("userReqC").Elem
	b.sendT = b.userT.Fields[0].Type
	b.updateT = b.userT.Fields[1].Type
	b.pktT = prog.IR.ChannelByName("netRecvC").Elem
	b.doneT = prog.IR.ChannelByName("hdmaDoneC").Elem

	bind := func(err2 error) {
		if err == nil {
			err = err2
		}
	}
	bind(m.BindWriter("userReqC", (*userReqBinding)(b)))
	bind(m.BindWriter("netRecvC", (*netRecvBinding)(b)))
	bind(m.BindWriter("hdmaDoneC", (*hdmaDoneBinding)(b)))
	bind(m.BindReader("hdmaReqC", (*hdmaReqBinding)(b)))
	bind(m.BindReader("netSendC", (*netSendBinding)(b)))
	bind(m.BindReader("notifyC", (*notifyBinding)(b)))
	if err != nil {
		return nil, err
	}
	return &ESPFirmware{m: m, b: b}, nil
}

// Name implements nic.Firmware.
func (f *ESPFirmware) Name() string { return "vmmcESP" }

// Machine exposes the underlying VM (stats, fault inspection).
func (f *ESPFirmware) Machine() *vm.Machine { return f.m }

// AttachObs wires the VM's observability hooks to this firmware: tr
// receives one timeline track per ESP process, prof attributes cycle
// charges to ESP source lines, and reg collects the VM counters. The
// VM's trace clock is anchored to the NIC's simulated nanosecond time
// (see runStartNs), so VM process spans line up with the hardware spans
// on the same timeline. Pass nils to detach.
func (f *ESPFirmware) AttachObs(tr obs.Tracer, prof *obs.Profiler, reg *obs.Metrics) {
	f.m.SetTracer(tr)
	f.m.SetProfiler(prof)
	f.m.SetMetrics(reg)
	if tr == nil && prof == nil {
		f.m.SetClock(nil)
		return
	}
	cyc := f.b.n.Cfg.CPUCycleNs
	f.m.SetClock(func() int64 {
		return f.runStartNs + (f.m.Cycles-f.runStartCycles)*cyc
	})
}

// Run implements nic.Firmware: execute the VM until idle; the consumed
// cycles come from the VM's cost meter.
func (f *ESPFirmware) Run(n *nic.NIC) int64 {
	start := f.m.Cycles
	f.b.cyclesFwd = start
	f.runStartNs = n.K.Now()
	f.runStartCycles = start
	res := f.m.Run()
	if res == vm.RunFault {
		panic(fmt.Sprintf("vmmc: ESP firmware fault on NIC %d: %v", n.ID, f.m.Fault()))
	}
	return f.m.Cycles - start
}

// ---------------------------------------------------------------------------
// The bridge ("helper C code")

type espBridge struct {
	n *nic.NIC
	m *vm.Machine

	userT, sendT, updateT, pktT, doneT *types.Type

	// lastRecvSeq is the ack-on-arrival cumulative counter; the
	// marshalling code stamps it into every outgoing packet (piggyback,
	// §5.3).
	lastRecvSeq int64

	// pendingReq holds a host request popped by Ready but not yet taken.
	// Stored by value: a pointer here would heap-allocate once per host
	// request on the firmware hot path.
	pendingReq  nic.HostRequest
	havePending bool

	hostDone  []int64 // host-DMA completion tags awaiting delivery
	cyclesFwd int64   // machine cycles already forwarded to the NIC clock
}

// sync forwards freshly consumed VM cycles to the NIC so that DMA issues
// and packet departures happen at the right simulated time.
func (b *espBridge) sync() {
	if d := b.m.Cycles - b.cyclesFwd; d > 0 {
		b.n.ChargeCPU(d)
		b.cyclesFwd = b.m.Cycles
	}
}

// drainDMADone moves host-DMA completions into the bridge queue; send-DMA
// completions only serve as wakeups and are dropped here.
func (b *espBridge) drainDMADone() {
	for {
		d, ok := b.n.PopDMADone()
		if !ok {
			return
		}
		if d.Engine == b.n.HostDMA {
			b.hostDone = append(b.hostDone, d.Tag)
		}
	}
}

// --- userReqC: external writer (host request queue) ---

type userReqBinding espBridge

func (b *userReqBinding) Ready(_ *vm.Machine) (int, bool) {
	if !b.havePending {
		r, ok := b.n.PopRequest()
		if !ok {
			return 0, false
		}
		b.pendingReq = r
		b.havePending = true
	}
	if b.pendingReq.IsUpdate {
		return 1, true
	}
	return 0, true
}

func (b *userReqBinding) Take(m *vm.Machine, caseIdx int) vm.Value {
	r := b.pendingReq
	b.havePending = false
	if caseIdx == 1 {
		rec := m.NewRecordV(b.updateT, vm.IntVal(r.UpdVAddr), vm.IntVal(r.UpdPAddr))
		return m.NewUnionV(b.userT, 1, rec)
	}
	rec := m.NewRecordV(b.sendT,
		vm.IntVal(int64(r.Dest)), vm.IntVal(r.VAddr), vm.IntVal(r.RAddr),
		vm.IntVal(int64(r.Size)), vm.IntVal(r.MsgID))
	return m.NewUnionV(b.userT, 0, rec)
}

// --- netRecvC: external writer (arrived packets) ---

type netRecvBinding espBridge

func (b *netRecvBinding) Ready(_ *vm.Machine) (int, bool) {
	if !b.n.HavePacket() {
		return 0, false
	}
	return 0, true
}

func (b *netRecvBinding) Take(m *vm.Machine, _ int) vm.Value {
	p, _ := b.n.PopPacket()
	isack := int64(0)
	if p.IsAck {
		isack = 1
	} else {
		// Ack-on-arrival: the unmarshalling code advances the cumulative
		// counter the next outgoing packet will piggyback.
		b.lastRecvSeq = p.Seq
	}
	last := int64(0)
	if p.Last {
		last = 1
	}
	return m.NewRecordV(b.pktT,
		vm.IntVal(p.Seq), vm.IntVal(p.Ack), vm.IntVal(isack), vm.IntVal(p.MsgID),
		vm.IntVal(p.RAddr), vm.IntVal(int64(p.Offset)), vm.IntVal(int64(p.Size)),
		vm.IntVal(int64(p.Total)), vm.IntVal(last), vm.IntVal(int64(p.Src)))
}

// --- hdmaDoneC: external writer (host DMA completions) ---

type hdmaDoneBinding espBridge

func (b *hdmaDoneBinding) Ready(_ *vm.Machine) (int, bool) {
	(*espBridge)(b).drainDMADone()
	if len(b.hostDone) == 0 {
		return 0, false
	}
	return 0, true
}

func (b *hdmaDoneBinding) Take(m *vm.Machine, _ int) vm.Value {
	tag := b.hostDone[0]
	copy(b.hostDone, b.hostDone[1:])
	b.hostDone = b.hostDone[:len(b.hostDone)-1]
	return m.NewRecordV(b.doneT, vm.IntVal(tag))
}

// --- hdmaReqC: external reader (start a host DMA) ---

type hdmaReqBinding espBridge

func (b *hdmaReqBinding) Ready(_ *vm.Machine) bool { return b.n.HostDMAFree() }

func (b *hdmaReqBinding) Put(_ *vm.Machine, v vm.Value) {
	(*espBridge)(b).sync()
	size := v.Ref.Elems[1].Int
	tag := v.Ref.Elems[2].Int
	b.n.StartHostDMA(int(size), tag)
}

// --- netSendC: external reader (transmit a packet) ---

type netSendBinding espBridge

func (b *netSendBinding) Ready(_ *vm.Machine) bool { return b.n.SendDMAFree() }

func (b *netSendBinding) Put(_ *vm.Machine, v vm.Value) {
	(*espBridge)(b).sync()
	e := v.Ref.Elems
	p := b.n.NewPacket()
	*p = nic.Packet{
		Src:    b.n.ID,
		Dst:    int(e[9].Int),
		Seq:    e[0].Int,
		Ack:    b.lastRecvSeq, // marshalling stamps the piggyback ack
		IsAck:  e[2].Int == 1,
		MsgID:  e[3].Int,
		RAddr:  e[4].Int,
		Offset: int(e[5].Int),
		Size:   int(e[6].Int),
		Total:  int(e[7].Int),
		Last:   e[8].Int == 1,
	}
	b.n.SendPacket(p)
}

// --- notifyC: external reader (completion notifications) ---

type notifyBinding espBridge

func (b *notifyBinding) Ready(_ *vm.Machine) bool { return true }

func (b *notifyBinding) Put(_ *vm.Machine, v vm.Value) {
	(*espBridge)(b).sync()
	e := v.Ref.Elems
	b.n.PostNotification(nic.Notification{
		From:  int(e[0].Int),
		MsgID: e[1].Int,
		Size:  int(e[2].Int),
	})
}

var _ nic.Firmware = (*ESPFirmware)(nil)
