package vmmc

import (
	"fmt"
	"strings"
	"sync"

	esplang "esplang"
	"esplang/internal/nic"
)

// modelCache caches compiled verification models by source text. The
// Verify* entry points are called in benchmark loops (and repeatedly by
// vmmcbench's tables) with identical parameters, and recompiling the
// model every call crowded the profile without exercising the checker. A
// compiled Program is immutable at runtime, so sharing is safe.
var modelCache sync.Map // source string -> *esplang.Program

func compileModel(src string, co esplang.CompileOptions) (*esplang.Program, error) {
	if p, ok := modelCache.Load(src); ok {
		return p.(*esplang.Program), nil
	}
	prog, err := esplang.Compile(src, co)
	if err != nil {
		return nil, err
	}
	if prev, loaded := modelCache.LoadOrStore(src, prog); loaded {
		return prev.(*esplang.Program), nil
	}
	return prog, nil
}

// This file reproduces §5.3: using the model checker to develop and
// exhaustively test the VMMC firmware.
//
// The verification model is derived from the very firmware source the NIC
// runs (the paper generates pgm.SPIN from the same program that becomes
// pgm.C): the external channel annotations are stripped and hand-written
// ESP driver processes — the analogue of the paper's test.SPIN files —
// close the system: a host that issues a bounded, nondeterministic
// request mix, and a hardware process that answers DMA requests and loops
// transmitted packets back with piggybacked acknowledgements.

// FirmwareModel returns the closed verification model of the ESP VMMC
// firmware: the firmware processes plus the test driver, for `msgs`
// nondeterministically chosen host requests.
func FirmwareModel(cfg nic.Config, msgs int) string {
	src := ESPSource(cfg)
	// Strip the external annotations and the C interface declarations:
	// every channel becomes internal, closed by the driver processes.
	begin := strings.Index(src, "// BEGIN-EXTERNAL-INTERFACES")
	end := strings.Index(src, "// END-EXTERNAL-INTERFACES")
	if begin < 0 || end < 0 {
		panic("vmmc: interface markers missing from the firmware source")
	}
	src = src[:begin] + src[end+len("// END-EXTERNAL-INTERFACES"):]
	src = strings.ReplaceAll(src, " external writer", "")
	src = strings.ReplaceAll(src, " external reader", "")

	driver := fmt.Sprintf(`
// ------ test driver (the test.SPIN analogue, §5.3) ------

const MSGS = %d;
const NETCAP = 4;

// The host: a bounded, nondeterministic mix of small sends (inline),
// large sends (fetch path), and page-table updates.
process hostDriver {
    $n = 0;
    while (n < MSGS) {
        alt {
            case( out( userReqC, { send |> { 1, 4096, 8192, 16, n + 1}})) { skip; }
            case( out( userReqC, { send |> { 1, 0, 0, 64, n + 1}})) { skip; }
            case( out( userReqC, { update |> { 4096, 12288}})) { skip; }
        }
        n = n + 1;
    }
}

// The host-DMA engine: every request completes.
process hwDma {
    while (true) {
        in( hdmaReqC, { $a, $s, $t});
        out( hdmaDoneC, { t});
    }
}

// The network: a buffered wire looping data packets back as arrivals with
// a cumulative ack, dropping explicit acks. The buffer (the send DMA plus
// the wire plus the receive ring) is essential: an unbuffered echo would
// inject a back-pressure cycle no real NIC has — the checker finds that
// deadlock instantly if the capacity is too small.
process hwNet {
    $qseq: #array of int = #{ NETCAP -> 0};
    $qmsg: #array of int = #{ NETCAP -> 0};
    $qraddr: #array of int = #{ NETCAP -> 0};
    $qoff: #array of int = #{ NETCAP -> 0};
    $qsize: #array of int = #{ NETCAP -> 0};
    $qtotal: #array of int = #{ NETCAP -> 0};
    $qlast: #array of int = #{ NETCAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( tl - hd < NETCAP,
                  in( netSendC, { $seq, $ak, $isack, $msgid, $raddr, $off, $size, $total, $last, $dest})) {
                if (isack == 0) {
                    qseq[tl %% NETCAP] = seq;
                    qmsg[tl %% NETCAP] = msgid;
                    qraddr[tl %% NETCAP] = raddr;
                    qoff[tl %% NETCAP] = off;
                    qsize[tl %% NETCAP] = size;
                    qtotal[tl %% NETCAP] = total;
                    qlast[tl %% NETCAP] = last;
                    tl = tl + 1;
                }
            }
            case( tl > hd,
                  out( netRecvC, { qseq[hd %% NETCAP], qseq[hd %% NETCAP], 0,
                                   qmsg[hd %% NETCAP], qraddr[hd %% NETCAP], qoff[hd %% NETCAP],
                                   qsize[hd %% NETCAP], qtotal[hd %% NETCAP], qlast[hd %% NETCAP], 1})) {
                hd = hd + 1;
            }
        }
    }
}

// The notification queue: always ready.
process hwNotify {
    while (true) {
        in( notifyC, { $src, $m, $tot});
        assert( tot > 0);
    }
}
`, msgs)
	return src + driver
}

// VerifyFirmware exhaustively model-checks the firmware model: memory
// safety (use-after-free, double free, leaks via objectId exhaustion),
// assertion violations (the retransmission invariants in the retrans
// process), and deadlock — idle receive-blocked firmware is a valid end
// state. opts.Workers sizes the checker's parallel frontier search
// (0 = all cores; the verdict and state count are identical at any
// worker count), so the §5.3 verification run scales with the machine —
// vmmcbench threads its -mc-workers flag through here.
func VerifyFirmware(cfg nic.Config, msgs int, opts esplang.VerifyOptions) (*esplang.VerifyResult, error) {
	prog, err := compileModel(FirmwareModel(cfg, msgs), esplang.CompileOptions{Name: "vmmc-verify"})
	if err != nil {
		return nil, fmt.Errorf("vmmc: verification model does not compile: %w", err)
	}
	opts.EndRecvOK = true
	if opts.MaxLiveObjects == 0 {
		opts.MaxLiveObjects = 64
	}
	return prog.Verify(opts), nil
}

// ---------------------------------------------------------------------------
// The retransmission protocol (§5.3: "developed entirely using the SPIN
// simulator... required 2 days" vs 10 for the original).

// RetransModel is a standalone sliding-window protocol with corruption-
// based retransmission — the §5.3 protocol in the form a timer-free model
// checker can explore: the wire always delivers but may nondeterministically
// corrupt a packet; the receiver nacks out-of-order or corrupted packets
// (cumulative ack of the last good one), and the sender rewinds
// (go-back-N).
//
// When buggy is true, the receiver accepts any good packet without the
// in-order check — the seeded bug the checker must find (as an assertion
// violation when a go-back-N retransmission delivers out of order).
func RetransModel(window, msgs int, buggy bool) string {
	accept := "bad == 0 && s == expect"
	if buggy {
		accept = "bad == 0" // BUG: accepts out-of-order packets
	}
	return fmt.Sprintf(`
// Sliding-window retransmission protocol with piggyback-style cumulative
// acks, developed under the model checker (§5.3).

const WIN = %d;
const MSGS = %d;
const NETCAP = 4;

channel dataC: record of { seq: int }            // sender -> wire
channel delivC: record of { seq: int, bad: int } // wire -> receiver
channel ackC: record of { ack: int }             // receiver -> sender (cumulative)

process sender {
    $next = 0;
    $base = 0;
    while (base < MSGS) {
        alt {
            case( next - base < WIN && next < MSGS, out( dataC, { next})) {
                next = next + 1;
            }
            case( in( ackC, { $a})) {
                if (a > base) {
                    base = a;
                } else {
                    // Cumulative ack at or below the window base: a packet
                    // was corrupted; go back and resend from the base.
                    next = base;
                }
            }
        }
    }
}

// The wire delivers every packet but may corrupt it (the model-checking
// stand-in for loss plus timeout).
process wire {
    while (true) {
        in( dataC, { $s});
        alt {
            case( out( delivC, { s, 0})) { skip; }
            case( out( delivC, { s, 1})) { skip; }
        }
    }
}

process receiver {
    $expect = 0;
    while (true) {
        in( delivC, { $s, $bad});
        if (%s) {
            // Accept. The protocol invariant: packets are accepted
            // strictly in order.
            assert( s == expect);
            expect = expect + 1;
            out( ackC, { expect});
        } else {
            if (expect < MSGS) {
                out( ackC, { expect}); // nack: ask for a go-back-N resend
            }
            // After completion, late duplicates are consumed silently.
        }
    }
}
`, window, msgs, accept)
}

// VerifyRetrans model-checks the retransmission protocol.
func VerifyRetrans(window, msgs int, buggy bool, opts esplang.VerifyOptions) (*esplang.VerifyResult, error) {
	prog, err := compileModel(RetransModel(window, msgs, buggy), esplang.CompileOptions{Name: "retrans"})
	if err != nil {
		return nil, err
	}
	opts.EndRecvOK = true
	return prog.Verify(opts), nil
}

// ---------------------------------------------------------------------------
// Seeded memory bugs (§5.3: "we also introduced a variety of memory
// allocation bugs ... The verifier was able to find the bug in every
// case.")

// MemBug selects a seeded memory-safety bug.
type MemBug int

// The seeded bug catalogue.
const (
	BugNone         MemBug = iota
	BugLeak                // a process forgets to unlink a received buffer
	BugUseAfterFree        // a process reads a buffer after unlinking it
	BugDoubleFree          // a process unlinks a buffer twice
)

func (b MemBug) String() string {
	switch b {
	case BugLeak:
		return "leak"
	case BugUseAfterFree:
		return "use-after-free"
	case BugDoubleFree:
		return "double-free"
	}
	return "none"
}

// MemSafetyModel is the data-path fragment of the firmware — the paper's
// "biggest process" check: buffers flow from a producer (the DMA data
// path, as in Appendix B's SM1) through a forwarding process to a
// consumer, with explicit reference counting. One of the seeded bugs can
// be injected.
func MemSafetyModel(bug MemBug) string {
	var use, release string
	switch bug {
	case BugLeak:
		use, release = "assert( data[0] >= 0);", "// BUG: missing unlink( data);"
	case BugUseAfterFree:
		use, release = "unlink( data); assert( data[0] >= 0); // BUG: read after free", ""
	case BugDoubleFree:
		use, release = "assert( data[0] >= 0);", "unlink( data); unlink( data); // BUG: double free"
	default:
		use, release = "assert( data[0] >= 0);", "unlink( data);"
	}
	return fmt.Sprintf(`
// Per-process memory-safety model: the firmware's buffer data path
// (Appendix B shape), checked exhaustively (§5.3).

type dataT = array of int
type msgT = record of { dest: int, data: dataT }

const MSGS = 5;

channel dmaC: msgT
channel fwdC: msgT

// The DMA data paths: two producers allocate buffers concurrently (like
// the dma and receive paths feeding SM1), so the checker explores their
// interleavings.
process producer {
    $n = 0;
    while (n < MSGS) {
        $d: dataT = { 2 -> n};
        out( dmaC, { n, d});
        unlink( d);
        n = n + 1;
    }
}

process producer2 {
    $n = 0;
    while (n < MSGS) {
        $d: dataT = { 2 -> n + 100};
        out( dmaC, { n + 100, d});
        unlink( d);
        n = n + 1;
    }
}

// SM1's shape: receive, inspect, forward, release (the paper's
// "unlink( sendData)" pattern).
process sm1like {
    while (true) {
        in( dmaC, { $dest, $data});
        out( fwdC, { dest, data});
        unlink( data);
    }
}

process consumer {
    while (true) {
        in( fwdC, { $dest, $data});
        %s
        %s
    }
}
`, use, release)
}

// VerifyMemSafety model-checks the data-path model with the given seeded
// bug (BugNone must pass; every other bug must be found).
func VerifyMemSafety(bug MemBug, opts esplang.VerifyOptions) (*esplang.VerifyResult, error) {
	prog, err := compileModel(MemSafetyModel(bug), esplang.CompileOptions{Name: "memsafety", File: "memsafety.esp"})
	if err != nil {
		return nil, err
	}
	opts.EndRecvOK = true
	if opts.MaxLiveObjects == 0 {
		opts.MaxLiveObjects = 8
	}
	return prog.Verify(opts), nil
}

// ---------------------------------------------------------------------------
// Multi-instance verification (§5.2: "the ability to run multiple copies
// of a ESP program under SPIN allows one to mimic a setup where the
// firmware on multiple machines are communicating with each other").

// firmwareNames are the channel and process identifiers instantiated per
// node in TwoNodeModel.
var firmwareNames = []string{
	// channels
	"userReqC", "hdmaReqC", "hdmaDoneC", "netSendC", "netRecvC", "notifyC",
	"ptReqC", "ptReplyC", "hreqC", "hreplyC", "stageC", "ackInfoC",
	"sentC", "relC", "storeC",
	// processes
	"pageTable", "sm1", "hdma", "sender", "retrans", "receiver", "storeMgr",
}

// instantiate renames every channel and process of the firmware source
// with a node suffix, producing one copy per node (types and constants
// stay shared, like the §5.2 translation's per-instance data arrays).
func instantiate(src string, node int) string {
	// Strip the type/const/channel prologue from the second copy: only
	// channels, interfaces (already removed), and processes are per-node.
	out := src
	for _, name := range firmwareNames {
		out = renameWord(out, name, fmt.Sprintf("%s_%d", name, node))
	}
	return out
}

// renameWord replaces whole-identifier occurrences of old with new.
func renameWord(s, old, new string) string {
	isWord := func(b byte) bool {
		return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		j := strings.Index(s[i:], old)
		if j < 0 {
			b.WriteString(s[i:])
			break
		}
		j += i
		before := j == 0 || !isWord(s[j-1])
		after := j+len(old) >= len(s) || !isWord(s[j+len(old)])
		b.WriteString(s[i:j])
		if before && after {
			b.WriteString(new)
		} else {
			b.WriteString(old)
		}
		i = j + len(old)
	}
	return b.String()
}

// TwoNodeModel builds a closed model of two firmware instances on two
// machines, cross-wired: node 0's transmissions arrive at node 1 and vice
// versa, so the sliding-window acknowledgements flow end to end. Node 0
// sends msgs small messages to node 1.
func TwoNodeModel(cfg nic.Config, msgs int) string {
	src := ESPSource(cfg)
	begin := strings.Index(src, "// BEGIN-EXTERNAL-INTERFACES")
	end := strings.Index(src, "// END-EXTERNAL-INTERFACES")
	if begin < 0 || end < 0 {
		panic("vmmc: interface markers missing from the firmware source")
	}
	src = src[:begin] + src[end+len("// END-EXTERNAL-INTERFACES"):]
	src = strings.ReplaceAll(src, " external writer", "")
	src = strings.ReplaceAll(src, " external reader", "")

	// Split the shared prologue (types + consts) from the per-node parts
	// (channels + processes).
	cut := strings.Index(src, "// External channels")
	if cut < 0 {
		panic("vmmc: firmware source layout changed")
	}
	prologue, perNode := src[:cut], src[cut:]

	var b strings.Builder
	b.WriteString(prologue)
	b.WriteString(instantiate(perNode, 0))
	b.WriteString(instantiate(perNode, 1))
	fmt.Fprintf(&b, `
// ------ two-node test driver (§5.2 multi-instance) ------

const MSGS = %d;

process hostDriver0 {
    $n = 0;
    while (n < MSGS) {
        alt {
            case( out( userReqC_0, { send |> { 1, 4096, 8192, 16, n + 1}})) { skip; }
            case( out( userReqC_0, { send |> { 1, 0, 0, 64, n + 1}})) { skip; }
        }
        n = n + 1;
    }
}

process hwDma0 {
    while (true) { in( hdmaReqC_0, { $a, $s, $t}); out( hdmaDoneC_0, { t}); }
}
process hwDma1 {
    while (true) { in( hdmaReqC_1, { $a, $s, $t}); out( hdmaDoneC_1, { t}); }
}

// The wire, one direction per process: whatever node 0 transmits arrives
// at node 1 unchanged, and vice versa (acks flow backwards).
process wire01 {
    while (true) {
        in( netSendC_0, { $seq, $ak, $isack, $msgid, $raddr, $off, $size, $total, $last, $dest});
        out( netRecvC_1, { seq, ak, isack, msgid, raddr, off, size, total, last, 0});
    }
}
process wire10 {
    while (true) {
        in( netSendC_1, { $seq, $ak, $isack, $msgid, $raddr, $off, $size, $total, $last, $dest});
        out( netRecvC_0, { seq, ak, isack, msgid, raddr, off, size, total, last, 1});
    }
}

process hwNotify0 {
    while (true) { in( notifyC_0, { $src, $m, $tot}); }
}
process hwNotify1 {
    $got = 0;
    while (true) {
        in( notifyC_1, { $src, $m, $tot});
        got = got + 1;
        assert( m == got);       // messages complete in order
        assert( got <= MSGS);    // and never more than were sent
    }
}
`, msgs)
	return b.String()
}

// VerifyTwoNode model-checks the two-node model.
func VerifyTwoNode(cfg nic.Config, msgs int, opts esplang.VerifyOptions) (*esplang.VerifyResult, error) {
	prog, err := compileModel(TwoNodeModel(cfg, msgs), esplang.CompileOptions{Name: "vmmc-2node"})
	if err != nil {
		return nil, fmt.Errorf("vmmc: two-node model does not compile: %w", err)
	}
	opts.EndRecvOK = true
	if opts.MaxLiveObjects == 0 {
		opts.MaxLiveObjects = 64
	}
	return prog.Verify(opts), nil
}
