package vmmc

import (
	"testing"

	esplang "esplang"
	"esplang/internal/nic"
)

// TestVerifyFirmwarePOR is the PR's headline measurement: the ample-set
// reduction must verify the firmware model to the same verdict while
// visiting at least 3x fewer states, and the sequential reduced search
// must be bit-for-bit reproducible.
func TestVerifyFirmwarePOR(t *testing.T) {
	cfg := nic.DefaultConfig()
	full, err := VerifyFirmware(cfg, 2, esplang.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Violation != nil {
		t.Fatalf("full search: unexpected violation: %v", full.Violation)
	}

	por := esplang.VerifyOptions{Workers: 1, Reduction: esplang.AmpleSets}
	red, err := VerifyFirmware(cfg, 2, por)
	if err != nil {
		t.Fatal(err)
	}
	if red.Violation != nil {
		t.Fatalf("reduced search: unexpected violation: %v", red.Violation)
	}
	if red.POR == nil || red.POR.AmpleStates == 0 {
		t.Fatalf("reduction never engaged: %+v", red.POR)
	}
	if red.States*3 > full.States {
		t.Errorf("expected >=3x state reduction on the firmware model, got full=%d por=%d (%.2fx)",
			full.States, red.States, float64(full.States)/float64(red.States))
	}
	t.Logf("firmware model: full %d states, por %d states (%.1fx), ample at %d/%d states, %d proviso fallbacks, %d deferred",
		full.States, red.States, float64(full.States)/float64(red.States),
		red.POR.AmpleStates, red.POR.AmpleStates+red.POR.FullStates,
		red.POR.ProvisoFallbacks, red.POR.DeferredTransitions)

	again, err := VerifyFirmware(cfg, 2, por)
	if err != nil {
		t.Fatal(err)
	}
	if again.States != red.States || again.Transitions != red.Transitions || again.MaxDepth != red.MaxDepth {
		t.Errorf("sequential reduced runs disagree: %v vs %v", red, again)
	}
}

// TestVerifyMemSafetyPOR: the reduction must not mask any of the
// seeded memory-safety bugs the model exists to catch.
func TestVerifyMemSafetyPOR(t *testing.T) {
	por := esplang.VerifyOptions{Workers: 1, Reduction: esplang.AmpleSets}
	for _, bug := range []MemBug{BugNone, BugLeak, BugUseAfterFree, BugDoubleFree} {
		full, err := VerifyMemSafety(bug, esplang.VerifyOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", bug, err)
		}
		red, err := VerifyMemSafety(bug, por)
		if err != nil {
			t.Fatalf("%v: %v", bug, err)
		}
		if (full.Violation == nil) != (red.Violation == nil) {
			t.Errorf("%v: verdicts diverge: full=%v por=%v", bug, full.Violation, red.Violation)
			continue
		}
		if full.Violation != nil && red.Violation != nil {
			ff, rf := full.Violation.Fault, red.Violation.Fault
			if (ff == nil) != (rf == nil) {
				t.Errorf("%v: violation class diverges: full=%v por=%v", bug, full.Violation, red.Violation)
			} else if ff != nil && ff.Kind != rf.Kind {
				t.Errorf("%v: fault kind diverges: full=%v por=%v", bug, ff.Kind, rf.Kind)
			}
		}
	}
}
