package vmmc

import (
	"fmt"

	"esplang/internal/nic"
)

// This file is the faithful re-creation of the original hand-written VMMC
// firmware (the paper's 15600 lines of C, §2.2 and Appendix A): an
// event-driven state machine program built on the setHandler / setState /
// deliverEvent interface, communicating between state machines through
// shared global variables, with hand-optimized fast paths that read the
// state of several DMA engines and state machines at once and short-cut
// the normal dispatch sequence.
//
// Execution costs are charged in LANai cycles per primitive: every status
// poll, event dispatch, state transition, table lookup, DMA setup, header
// build, and queue operation pays a fixed price; the fast path pays one
// combined (cheaper) price, which is exactly the saving the paper's
// Figure 5 attributes to it.

// Cycle prices of the baseline firmware's primitives.
const (
	cPoll       = 4  // read the status registers once
	cDispatch   = 24 // deliverEvent: table lookup plus indirect call
	cTransition = 5  // setState
	cHandler    = 12 // handler prologue
	cGlobals    = 10 // save/restore values through global variables (§2.2: "all the values that are needed later have to be saved explicitly in global variables")
	cTranslate  = 22 // page-table lookup
	cDMASetup   = 30 // program a DMA engine
	cPktHeader  = 20 // marshal a packet header
	cAckProc    = 16 // process a piggybacked ack, release window slots
	cRetrans    = 14 // retransmission bookkeeping (retain/release, timers)
	cNotify     = 22 // post a completion notification
	cQueueOp    = 7  // stage/unstage a packet buffer
	cWindow     = 6  // window occupancy check
	cFastPath   = 38 // the whole combined fast-path handler (registers only)

	// cutThroughLead is how much of a page the fast path lets the host
	// DMA fetch before it fires up the network DMA behind it.
	cutThroughLead = 512
)

// state machines and their states/events, as in Appendix A
type smID int

const (
	sm1 smID = iota // user request processing
	sm2             // network send
	sm3             // receive processing
	numSMs
)

type smState int

const (
	stWaitReq smState = iota
	stWaitDMA
	stWaitSM2
	stWaitWindow
	stIdle
)

type smEvent int

const (
	evUserReq smEvent = iota
	evDMAFree
	evSM2Ready
	evPktArrived
	evStoreDone
	evAckAdvance
)

type handlerKey struct {
	sm smID
	st smState
	ev smEvent
}

// OrigFirmware is one NIC's instance of the baseline.
type OrigFirmware struct {
	fastPaths bool

	cycles int64 // consumed in the current Run

	// Appendix-A machinery.
	handlers map[handlerKey]func()
	states   [numSMs]smState

	// Globals shared between the state machines (the paper's pAddr,
	// sendData, reqSM2, ...).
	n *nic.NIC // valid during Run

	pageTable map[int64]int64

	// Send side.
	curReq    *nic.HostRequest
	curOffset int
	fetchTag  int64
	staged    []*nic.Packet // fetched chunks waiting for window + send DMA
	nextSeq   int64
	lastAck   int64 // highest cumulative ack received
	inflight  int

	// Receive side.
	lastRecvSeq int64 // ack-on-arrival cumulative counter
	storeQ      []*nic.Packet
	storing     *nic.Packet
	recvBytes   map[int64]int // per msgID bytes stored
	unacked     int
	wantAck     bool
}

// NewOrigFirmware creates the baseline firmware, with or without the
// hand-optimized fast paths.
func NewOrigFirmware(fastPaths bool) *OrigFirmware {
	f := &OrigFirmware{
		fastPaths:   fastPaths,
		handlers:    make(map[handlerKey]func()),
		pageTable:   make(map[int64]int64),
		recvBytes:   make(map[int64]int),
		nextSeq:     1,
		lastRecvSeq: 0,
	}
	// main(): initialize the handler tables (Appendix A).
	f.setHandler(sm1, stWaitReq, evUserReq, f.handleReq)
	f.setHandler(sm1, stWaitDMA, evDMAFree, f.fetchData)
	f.setHandler(sm1, stWaitSM2, evSM2Ready, f.syncSM2)
	f.setState(sm1, stWaitReq)
	f.setState(sm2, stIdle)
	f.setState(sm3, stIdle)
	return f
}

// Name implements nic.Firmware.
func (f *OrigFirmware) Name() string {
	if f.fastPaths {
		return "vmmcOrig"
	}
	return "vmmcOrigNoFastPaths"
}

func (f *OrigFirmware) charge(c int64) {
	f.cycles += c
	if f.n != nil {
		f.n.ChargeCPU(c)
	}
}

func (f *OrigFirmware) setHandler(sm smID, st smState, ev smEvent, h func()) {
	f.handlers[handlerKey{sm, st, ev}] = h
}

func (f *OrigFirmware) setState(sm smID, st smState) {
	f.charge(cTransition)
	f.states[sm] = st
}

func (f *OrigFirmware) isState(sm smID, st smState) bool { return f.states[sm] == st }

func (f *OrigFirmware) deliverEvent(sm smID, ev smEvent) {
	f.charge(cDispatch)
	if h := f.handlers[handlerKey{sm, f.states[sm], ev}]; h != nil {
		h()
	}
}

// translate looks an address up in the page table (identity for unmapped
// pages, like a warmed translation table).
func (f *OrigFirmware) translate(vaddr int64) int64 {
	f.charge(cTranslate)
	if p, ok := f.pageTable[vaddr]; ok {
		return p
	}
	return vaddr
}

// Run implements nic.Firmware: the firmware's main polling loop.
func (f *OrigFirmware) Run(n *nic.NIC) int64 {
	f.n = n
	f.cycles = 0
	// Charge the cycles through ChargeCPU as they accrue, so DMA issue
	// times line up; Run's return is the total.
	for {
		progress := false
		f.cycles += cPoll
		n.ChargeCPU(cPoll)

		// DMA completions first (the status register the real firmware
		// polls most urgently).
		if d, ok := n.PopDMADone(); ok {
			f.dmaDone(d)
			progress = true
		}
		// Arriving packets.
		if !progress {
			if p, ok := n.PopPacket(); ok {
				f.handlePkt(p)
				progress = true
			}
		}
		// A fetch that found the host DMA busy retries when the engine
		// frees (the engine-free wakeup has no completion record).
		if !progress && f.isState(sm1, stWaitDMA) && f.fetchTag == 0 &&
			f.curReq != nil && n.HostDMAFree() {
			f.deliverEvent(sm1, evDMAFree)
			progress = true
		}
		// New host requests (when SM1 is idle).
		if !progress && f.isState(sm1, stWaitReq) && n.HaveRequest() {
			r, _ := n.PopRequest()
			f.charge(cQueueOp)
			if r.IsUpdate {
				f.charge(cHandler)
				f.pageTable[r.UpdVAddr] = r.UpdPAddr
			} else {
				f.curReq = &r
				f.curOffset = 0
				f.deliverEvent(sm1, evUserReq)
			}
			progress = true
		}
		// Push staged packets out.
		if f.trySend() {
			progress = true
		}
		// Explicit ack when due and nothing piggybacks.
		if f.wantAck && len(f.staged) == 0 && n.SendDMAFree() {
			f.charge(cPktHeader + cDMASetup)
			ack := n.NewPacket()
			*ack = nic.Packet{Src: n.ID, IsAck: true, Ack: f.lastRecvSeq}
			n.SendPacket(ack)
			f.wantAck = false
			progress = true
		}
		if !progress {
			break
		}
	}
	f.n = nil
	return f.cycles
}

// ---------------------------------------------------------------------------
// Send path (SM1): Appendix A's handleReq / fetchData / syncSM2

// handleReq processes a user send request. The fast path (§2.2: taken
// "if the network DMA is free and no other request is currently being
// processed", reading the state of multiple DMAs and updating the
// retransmission globals directly) handles single-chunk requests in one
// combined handler.
func (f *OrigFirmware) handleReq() {
	f.charge(cHandler)
	r := f.curReq
	small := r.Size <= f.n.Cfg.SmallMsgMax
	single := small || r.Size <= f.n.Cfg.PageSize

	if f.fastPaths && single && len(f.staged) == 0 && f.inflight < f.n.Cfg.SendWindow &&
		f.n.SendDMAFree() && (small || f.n.HostDMAFree()) {
		// FAST PATH: one combined handler, no state transitions, no
		// SM2 dispatch. It violates every abstraction boundary: it reads
		// the DMA status registers, the window state and SM2's queue, and
		// updates the retransmission globals inline.
		f.charge(cFastPath)
		if small {
			// Data came inline with the request: send immediately.
			f.sendChunkNow(r, 0, r.Size)
			f.curReq = nil
			return
		}
		f.translate(r.VAddr)
		// Cut-through: start the network DMA as soon as the head of the
		// page is in SRAM, streaming behind the host DMA.
		f.n.StartHostDMACutThrough(r.Size, cutThroughLead, 1000)
		f.setState(sm1, stWaitSM2) // fast fetch outstanding
		return
	}

	// SLOW PATH: the Appendix A sequence. Values needed by later
	// handlers go through global variables (§2.2).
	f.charge(cGlobals)
	if small {
		f.charge(cPktHeader)
		f.stageChunk(r, 0, r.Size)
		f.curReq = nil
		f.deliverEvent(sm2, evSM2Ready)
		return
	}
	f.startFetch()
}

// startFetch translates and fetches the next chunk of the current request.
// SM1 stays in stWaitDMA until the fetch completes (or until the engine
// frees when it was busy).
func (f *OrigFirmware) startFetch() {
	r := f.curReq
	if r == nil {
		return
	}
	chunk := r.Size - f.curOffset
	if chunk > f.n.Cfg.PageSize {
		chunk = f.n.Cfg.PageSize
	}
	f.translate(r.VAddr + int64(f.curOffset))
	f.charge(cDMASetup)
	f.setState(sm1, stWaitDMA)
	if f.n.StartHostDMA(chunk, 2000) {
		f.fetchTag = 2000
	} else {
		f.fetchTag = 0 // engine busy: retry on the next DMA-free event
	}
}

// fetchData continues after the host DMA freed up (Appendix A).
func (f *OrigFirmware) fetchData() {
	f.charge(cHandler)
	f.startFetch()
}

// syncSM2 hands a fetched chunk to SM2 (Appendix A).
func (f *OrigFirmware) syncSM2() {
	f.charge(cHandler + cGlobals)
	r := f.curReq
	if r == nil {
		return
	}
	chunk := r.Size - f.curOffset
	if chunk > f.n.Cfg.PageSize {
		chunk = f.n.Cfg.PageSize
	}
	f.stageChunk(r, f.curOffset, chunk)
	f.curOffset += chunk
	f.deliverEvent(sm2, evSM2Ready)
	if f.curOffset >= r.Size {
		f.curReq = nil
		f.setState(sm1, stWaitReq)
	} else {
		f.startFetch()
	}
}

// stageChunk queues a packet buffer for SM2.
func (f *OrigFirmware) stageChunk(r *nic.HostRequest, off, size int) {
	f.charge(cPktHeader + cQueueOp)
	p := f.n.NewPacket()
	*p = nic.Packet{
		Src:    f.n.ID,
		Dst:    r.Dest,
		MsgID:  r.MsgID,
		RAddr:  r.RAddr + int64(off),
		Offset: off,
		Size:   size,
		Total:  r.Size,
		Last:   off+size >= r.Size,
	}
	f.staged = append(f.staged, p)
}

// sendChunkNow is the fast path's inline transmission.
func (f *OrigFirmware) sendChunkNow(r *nic.HostRequest, off, size int) {
	p := f.n.NewPacket()
	*p = nic.Packet{
		Src:    f.n.ID,
		Dst:    r.Dest,
		MsgID:  r.MsgID,
		RAddr:  r.RAddr + int64(off),
		Offset: off,
		Size:   size,
		Total:  r.Size,
		Last:   off+size >= r.Size,
	}
	p.Seq = f.nextSeq
	p.Ack = f.lastRecvSeq
	f.nextSeq++
	f.inflight++
	f.charge(cDMASetup + cRetrans)
	f.n.SendPacket(p)
	f.wantAck = false // piggybacked
}

// trySend pushes staged packets out while the window and send DMA allow
// (the SM2 state machine's work).
func (f *OrigFirmware) trySend() bool {
	f.charge(cWindow)
	if len(f.staged) == 0 || f.inflight >= f.n.Cfg.SendWindow || !f.n.SendDMAFree() {
		return false
	}
	f.charge(cDispatch + cHandler + cGlobals) // SM2 dispatch
	p := f.staged[0]
	f.staged = f.staged[1:]
	f.charge(cQueueOp)
	p.Seq = f.nextSeq
	p.Ack = f.lastRecvSeq
	f.nextSeq++
	f.inflight++
	// The retransmission state machine is dispatched separately on the
	// slow path; the fast path updates its globals inline.
	f.charge(cDMASetup + cDispatch + cHandler + cRetrans)
	f.n.SendPacket(p)
	f.wantAck = false // piggybacked
	return true
}

// ---------------------------------------------------------------------------
// DMA completions

func (f *OrigFirmware) dmaDone(d nic.DMADone) {
	switch {
	case d.Engine == f.n.HostDMA && d.Tag == 1000:
		// Fast-path fetch completed: transmit directly, falling back to
		// staging when the send DMA got grabbed in the meantime.
		f.charge(cHandler)
		if r := f.curReq; r != nil {
			if f.n.SendDMAFree() && f.inflight < f.n.Cfg.SendWindow {
				f.sendChunkNow(r, 0, r.Size)
			} else {
				f.stageChunk(r, 0, r.Size)
			}
			f.curReq = nil
		}
		f.setState(sm1, stWaitReq)
	case d.Engine == f.n.HostDMA && d.Tag == 2000:
		// Slow-path fetch completed: hand to SM2.
		f.fetchTag = 0
		f.syncSM2()
	case d.Engine == f.n.HostDMA && d.Tag == 3000:
		// Store to host memory completed.
		f.storeDone()
	default:
		// Send DMA freed: trySend in the main loop picks it up.
		f.charge(cHandler)
	}
	f.maybeResumeSM1()
	f.pumpStore()
}

// maybeResumeSM1 retries a fetch that found the host DMA busy.
func (f *OrigFirmware) maybeResumeSM1() {
	if f.isState(sm1, stWaitDMA) && f.fetchTag == 0 && f.curReq != nil && f.n.HostDMAFree() {
		f.deliverEvent(sm1, evDMAFree)
	}
}

// ---------------------------------------------------------------------------
// Receive path (SM3)

func (f *OrigFirmware) handlePkt(p *nic.Packet) {
	if f.fastPaths && !p.IsAck && f.storing == nil && len(f.storeQ) == 0 && f.n.HostDMAFree() {
		// RECEIVE FAST PATH: one combined handler processes the ack,
		// advances the window, translates, and starts the store, with the
		// retransmission globals updated inline.
		f.charge(cFastPath + cTranslate + cDMASetup)
		if p.Ack > f.lastAck {
			f.inflight -= int(p.Ack - f.lastAck)
			f.lastAck = p.Ack
		}
		f.lastRecvSeq = p.Seq
		f.unacked++
		if f.unacked >= f.n.Cfg.AckCoalesce {
			f.wantAck = true
			f.unacked = 0
		}
		f.storing = p
		f.n.StartHostDMA(p.Size, 3000)
		return
	}

	f.charge(cDispatch + cHandler + cGlobals)
	// Piggybacked ack: release window slots, then dispatch the
	// retransmission state machine to release its buffers.
	f.charge(cAckProc + cDispatch + cRetrans)
	if p.Ack > f.lastAck {
		f.inflight -= int(p.Ack - f.lastAck)
		f.lastAck = p.Ack
	}
	if p.IsAck {
		return
	}
	// Ack-on-arrival: the cumulative counter the next outgoing packet
	// piggybacks.
	f.lastRecvSeq = p.Seq
	f.unacked++
	if f.unacked >= f.n.Cfg.AckCoalesce {
		f.wantAck = true
		f.unacked = 0
	}
	f.translate(p.RAddr)
	f.charge(cQueueOp)
	f.storeQ = append(f.storeQ, p)
	f.pumpStore()
}

// pumpStore starts the next host-memory store when the engine is free.
func (f *OrigFirmware) pumpStore() {
	if f.storing != nil || len(f.storeQ) == 0 || !f.n.HostDMAFree() {
		return
	}
	f.storing = f.storeQ[0]
	f.storeQ = f.storeQ[1:]
	f.charge(cDMASetup)
	f.n.StartHostDMA(f.storing.Size, 3000)
}

func (f *OrigFirmware) storeDone() {
	f.charge(cHandler)
	p := f.storing
	f.storing = nil
	if p == nil {
		return
	}
	f.recvBytes[p.MsgID] += p.Size
	if f.recvBytes[p.MsgID] >= p.Total {
		f.charge(cNotify)
		f.n.PostNotification(nic.Notification{From: p.Src, MsgID: p.MsgID, Size: p.Total})
		delete(f.recvBytes, p.MsgID)
	}
	f.pumpStore()
}

var _ nic.Firmware = (*OrigFirmware)(nil)

func init() {
	// Compile-time-ish sanity: the handler keys must be distinct.
	if numSMs != 3 {
		panic(fmt.Sprintf("vmmc: unexpected state machine count %d", numSMs))
	}
}
