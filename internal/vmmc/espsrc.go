package vmmc

import (
	"fmt"

	"esplang/internal/nic"
)

// ESPSource returns the VMMC firmware written in ESP (the paper's §4.6
// case study, in the style of Appendix B), instantiated with the hardware
// configuration's constants. Seven processes and fifteen channels:
//
//	pageTable — virtual-to-physical translation (Appendix B's process)
//	sm1       — user send requests: split into pages, translate, fetch
//	hdma      — serializes the single host-DMA engine
//	sender    — sliding window, sequence numbers, transmission (SM2)
//	retrans   — retransmission-buffer bookkeeping (§5.3's protocol)
//	receiver  — arriving packets: acks, translation, ack policy
//	storeMgr  — host-DMA stores and completion notifications
//
// The external channels are the NIC hardware: userReqC (host request
// queue), hdmaReqC/hdmaDoneC (host DMA engine), netSendC/netRecvC
// (network DMAs), notifyC (notification queue). The Go bridge in espfw.go
// plays the role of the paper's programmer-supplied helper C code —
// device-register access and packet marshalling/unmarshalling, including
// stamping the piggybacked cumulative ack at marshalling time.
func ESPSource(cfg nic.Config) string {
	return fmt.Sprintf(espSourceTemplate,
		cfg.PageSize, cfg.SmallMsgMax, cfg.SendWindow, cfg.AckCoalesce, ptEntries)
}

// ptEntries is the number of translation-table entries the firmware keeps
// in SRAM.
const ptEntries = 64

const espSourceTemplate = `
// VMMC firmware in ESP (PLDI 2001 case study, Appendix B style).

type sendT = record of { dest: int, vaddr: int, raddr: int, size: int, msgid: int}
type updateT = record of { vaddr: int, paddr: int}
type userT = union of { send: sendT, update: updateT}
type pktT = record of { seq: int, ack: int, isack: int, msgid: int,
                        raddr: int, offset: int, size: int, total: int,
                        last: int, dest: int}

const PAGE = %d;
const SMALL = %d;
const WINDOW = %d;
const ACKEVERY = %d;
const PTSIZE = %d;

// External channels: the device registers and queues (helper C code).
channel userReqC: userT external writer
channel hdmaReqC: record of { addr: int, size: int, tag: int} external reader
channel hdmaDoneC: record of { tag: int} external writer
channel netSendC: pktT external reader
channel netRecvC: pktT external writer
channel notifyC: record of { src: int, msgid: int, total: int} external reader

// Internal channels.
channel ptReqC: record of { ret: int, vaddr: int}
channel ptReplyC: record of { ret: int, paddr: int}
channel hreqC: record of { ret: int, addr: int, size: int}
channel hreplyC: record of { ret: int}
channel stageC: pktT
channel ackInfoC: record of { ack: int}
channel sentC: record of { seq: int}
channel relC: record of { ack: int}
channel storeC: record of { paddr: int, size: int, src: int, msgid: int, total: int, last: int}

// BEGIN-EXTERNAL-INTERFACES
interface userReq( out userReqC) {
    Send( { send |> { $dest, $vaddr, $raddr, $size, $msgid}}),
    Update( { update |> { $vaddr, $paddr}}),
}
interface hdmaDone( out hdmaDoneC) {
    Done( { $tag}),
}
interface netRecv( out netRecvC) {
    Pkt( { $seq, $ack, $isack, $msgid, $raddr, $offset, $size, $total, $last, $src}),
}
// END-EXTERNAL-INTERFACES

// Virtual-to-physical translation (Appendix B). Entries store paddr+1;
// zero means unmapped, which translates to the identity mapping.
process pageTable {
    $table: #array of int = #{ PTSIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vaddr})) {
                $p = table[(vaddr / PAGE) %% PTSIZE];
                if (p == 0) { p = vaddr + 1; }
                out( ptReplyC, { ret, p - 1});
            }
            case( in( userReqC, { update |> { $vaddr, $paddr}})) {
                table[(vaddr / PAGE) %% PTSIZE] = paddr + 1;
            }
        }
    }
}

// User send requests: split into page chunks; translate and fetch each
// chunk through the host DMA; hand packets to the sender. Small messages
// arrive inline with the request and skip the fetch (the 32-byte special
// case).
process sm1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vaddr, $raddr, $size, $msgid}});
        $off = 0;
        while (off < size) {
            $chunk = size - off;
            if (chunk > PAGE) { chunk = PAGE; }
            if (size > SMALL) {
                out( ptReqC, { @, vaddr + off});
                in( ptReplyC, { @, $paddr});
                out( hreqC, { @, paddr, chunk});
                in( hreplyC, { @});
            }
            $islast = 0;
            if (off + chunk == size) { islast = 1; }
            out( stageC, { 0, 0, 0, msgid, raddr + off, off, chunk, size, islast, dest});
            off = off + chunk;
        }
    }
}

// The single host-DMA engine, serialized: forward a request to the
// hardware (the out blocks while the engine is busy), await completion,
// reply to the requesting process.
process hdma {
    while (true) {
        in( hreqC, { $ret, $addr, $size});
        out( hdmaReqC, { addr, size, ret});
        in( hdmaDoneC, { $tag});
        out( hreplyC, { tag});
    }
}

// Transmission (the paper's SM2): owns the sequence space and the send
// window. The ack field is stamped by the marshalling helper (-1 here).
process sender {
    $nextseq = 1;
    $lastack = 0;
    while (true) {
        alt {
            case( in( ackInfoC, { $a})) {
                if (a > lastack) {
                    lastack = a;
                    out( relC, { a});
                }
            }
            case( nextseq - lastack <= WINDOW,
                  in( stageC, { _, _, _, $msgid, $raddr, $offset, $size, $total, $last, $dest})) {
                out( netSendC, { nextseq, -1, 0, msgid, raddr, offset, size, total, last, dest});
                out( sentC, { nextseq});
                nextseq = nextseq + 1;
            }
        }
    }
}

// Retransmission bookkeeping (§5.3): retain a buffer per sent packet,
// release on cumulative ack. The simulated wire is lossless, so the
// timers never fire, but the window invariants are asserted — this is the
// process the verifier checks.
process retrans {
    $maxseq = 0;
    $maxack = 0;
    while (true) {
        alt {
            case( in( sentC, { $s})) {
                assert( s == maxseq + 1);
                maxseq = s;
            }
            case( in( relC, { $a})) {
                if (a > maxack) { maxack = a; }
                assert( maxack <= maxseq);
            }
        }
    }
}

// Arriving packets: release the window via the piggybacked ack, translate
// the destination address, hand the chunk to the store manager, and
// coalesce explicit acks when no data flows back. Handing off (rather
// than awaiting the store) lets packet processing overlap the host DMA.
process receiver {
    $unacked = 0;
    while (true) {
        in( netRecvC, { $seq, $ack, $isack, $msgid, $raddr, $offset, $size, $total, $last, $src});
        if (ack > 0) {
            out( ackInfoC, { ack});
        }
        if (isack == 0) {
            out( ptReqC, { @, raddr});
            in( ptReplyC, { @, $paddr});
            out( storeC, { paddr, size, src, msgid, total, last});
            unacked = unacked + 1;
            if (unacked >= ACKEVERY) {
                out( netSendC, { 0, -1, 1, 0, 0, 0, 0, 0, 0, src});
                unacked = 0;
            }
        }
    }
}

// Store manager: drives host-DMA stores to completion and posts the
// completion notification after the final chunk of a message landed.
process storeMgr {
    while (true) {
        in( storeC, { $paddr, $size, $src, $msgid, $total, $last});
        out( hreqC, { @, paddr, size});
        in( hreplyC, { @});
        if (last == 1) {
            out( notifyC, { src, msgid, total});
        }
    }
}
`
