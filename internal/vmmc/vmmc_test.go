package vmmc

import (
	"testing"

	esplang "esplang"
	"esplang/internal/nic"
)

var allFlavors = []Flavor{ESP, Orig, OrigNoFastPaths}

func TestESPFirmwareCompiles(t *testing.T) {
	cfg := nic.DefaultConfig()
	prog, err := esplang.Compile(ESPSource(cfg), esplang.CompileOptions{Name: "vmmcESP"})
	if err != nil {
		t.Fatalf("ESP firmware does not compile: %v", err)
	}
	s := prog.Stats()
	if s.Processes != 7 {
		t.Errorf("firmware has %d processes, want 7 (§4.6)", s.Processes)
	}
	if s.Channels != 15 {
		t.Errorf("firmware has %d channels, want 15", s.Channels)
	}
	t.Logf("ESP firmware: %d lines (%d decl + %d process), %d processes, %d channels, %d instructions",
		s.SourceLines, s.DeclLines, s.ProcessLines, s.Processes, s.Channels, s.Instructions)
}

func TestSingleMessageDelivery(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			c, err := NewCluster(fl, nic.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			c.Hosts[0].Send(0x1000, 0x2000, 512)
			c.Run(0)
			if len(c.Hosts[1].Recvd) != 1 {
				t.Fatalf("host 1 received %d notifications, want 1", len(c.Hosts[1].Recvd))
			}
			nt := c.Hosts[1].Recvd[0]
			if nt.Size != 512 || nt.From != 0 || nt.MsgID != 1 {
				t.Errorf("notification = %+v", nt)
			}
			if nt.Time <= 0 {
				t.Error("notification carries no completion time")
			}
		})
	}
}

func TestSmallMessageInline(t *testing.T) {
	// Messages <= 32 bytes skip the host-DMA fetch on the send side.
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			cfg := nic.DefaultConfig()
			c, err := NewCluster(fl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.Hosts[0].Send(0, 0, 16)
			c.Run(0)
			if len(c.Hosts[1].Recvd) != 1 {
				t.Fatalf("received %d, want 1", len(c.Hosts[1].Recvd))
			}
			// Sender-side NIC: host DMA must not have run (only the
			// receiver's store uses it).
			if c.NICs[0].HostDMA.Transfers != 0 {
				t.Errorf("sender host DMA ran %d transfers for an inline message",
					c.NICs[0].HostDMA.Transfers)
			}
		})
	}
}

func TestMultiPageMessage(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			cfg := nic.DefaultConfig()
			c, err := NewCluster(fl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			size := 3*cfg.PageSize + 100 // 4 chunks
			c.Hosts[0].Send(0, 0, size)
			c.Run(0)
			if len(c.Hosts[1].Recvd) != 1 {
				t.Fatalf("received %d notifications, want 1", len(c.Hosts[1].Recvd))
			}
			if c.Hosts[1].Recvd[0].Size != size {
				t.Errorf("size = %d, want %d", c.Hosts[1].Recvd[0].Size, size)
			}
			if got := c.NICs[0].PktsSent; got != 4 {
				t.Errorf("sender sent %d data packets, want 4", got)
			}
		})
	}
}

func TestManyMessagesAllDelivered(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			c, err := NewCluster(fl, nic.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			done := 0
			c.Hosts[1].OnRecv = func(nic.Notification) { done++ }
			for i := 0; i < n; i++ {
				c.Hosts[0].Send(int64(i*64), int64(i*64), 64)
			}
			c.Run(0)
			if done != n {
				t.Fatalf("delivered %d/%d messages", done, n)
			}
			// Message ids must arrive in order (in-order wire + protocol).
			for i, nt := range c.Hosts[1].Recvd {
				if nt.MsgID != int64(i+1) {
					t.Fatalf("notification %d has msgid %d", i, nt.MsgID)
				}
			}
		})
	}
}

func TestPageTableUpdateFlows(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			c, err := NewCluster(fl, nic.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			c.Hosts[0].Update(0x4000, 0x9000)
			c.Hosts[0].Send(0x4000, 0x4000, 128)
			c.Run(0)
			if len(c.Hosts[1].Recvd) != 1 {
				t.Fatalf("received %d, want 1 (update must not disturb sends)", len(c.Hosts[1].Recvd))
			}
		})
	}
}

func TestPingPongCompletes(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			lat, err := PingPong(fl, nic.DefaultConfig(), 4, 10)
			if err != nil {
				t.Fatal(err)
			}
			if lat <= 0 {
				t.Errorf("latency = %f", lat)
			}
			t.Logf("%s: 4B one-way latency %.1f us", fl, lat/1000)
		})
	}
}

func TestOneWayCompletes(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			bw, err := OneWay(fl, nic.DefaultConfig(), 4096, 30)
			if err != nil {
				t.Fatal(err)
			}
			if bw <= 0 {
				t.Errorf("bandwidth = %f", bw)
			}
			t.Logf("%s: 4KB one-way bandwidth %.1f MB/s", fl, bw)
		})
	}
}

func TestBidirectionalCompletes(t *testing.T) {
	for _, fl := range allFlavors {
		t.Run(fl.String(), func(t *testing.T) {
			bw, err := Bidirectional(fl, nic.DefaultConfig(), 4096, 20)
			if err != nil {
				t.Fatal(err)
			}
			if bw <= 0 {
				t.Errorf("bandwidth = %f", bw)
			}
			t.Logf("%s: 4KB bidirectional bandwidth %.1f MB/s", fl, bw)
		})
	}
}

// TestFigure5Shape checks the qualitative claims of Figure 5: ESP is the
// slowest, the fast paths help Orig, and the gaps shrink with message
// size.
func TestFigure5Shape(t *testing.T) {
	cfg := nic.DefaultConfig()
	lat := func(fl Flavor, size int) float64 {
		v, err := PingPong(fl, cfg, size, 10)
		if err != nil {
			t.Fatalf("%s size %d: %v", fl, size, err)
		}
		return v
	}
	for _, size := range []int{4, 4096} {
		e, o, nf := lat(ESP, size), lat(Orig, size), lat(OrigNoFastPaths, size)
		t.Logf("size %d: ESP %.1f us, Orig %.1f us, NoFast %.1f us", size, e/1000, o/1000, nf/1000)
		if e <= o {
			t.Errorf("size %d: ESP (%.0f) not slower than Orig (%.0f)", size, e, o)
		}
		if nf < o {
			t.Errorf("size %d: NoFastPaths (%.0f) faster than Orig (%.0f)", size, nf, o)
		}
		if e < nf {
			t.Errorf("size %d: ESP (%.0f) faster than NoFastPaths (%.0f)", size, e, nf)
		}
	}
	// Relative gap shrinks with size.
	gap4 := lat(ESP, 4) / lat(Orig, 4)
	gap4k := lat(ESP, 4096) / lat(Orig, 4096)
	t.Logf("ESP/Orig latency ratio: %.2f at 4B, %.2f at 4KB", gap4, gap4k)
	if gap4k >= gap4 {
		t.Errorf("gap does not shrink with size: %.2f at 4B vs %.2f at 4KB", gap4, gap4k)
	}
}

func TestESPFirmwareNoLeaks(t *testing.T) {
	// A long run must not grow the firmware heap (the VM's live-object
	// bound would fault; also check the resting live count).
	c, err := NewCluster(ESP, nic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		c.Hosts[0].Send(0, 0, 256)
	}
	c.Run(0)
	if len(c.Hosts[1].Recvd) != n {
		t.Fatalf("delivered %d/%d", len(c.Hosts[1].Recvd), n)
	}
	for i := 0; i < 2; i++ {
		fw := c.NICs[i].FW.(*ESPFirmware)
		live := fw.Machine().Heap().Live()
		// Only the page table array should rest on the heap.
		if live > 2 {
			t.Errorf("NIC %d firmware heap has %d live objects at rest", i, live)
		}
	}
}

func TestESPCyclesExceedOrig(t *testing.T) {
	// The interpreter overhead must show up as more CPU cycles for the
	// same workload.
	cycles := func(fl Flavor) int64 {
		c, err := NewCluster(fl, nic.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			c.Hosts[0].Send(0, 0, 64)
		}
		c.Run(0)
		if len(c.Hosts[1].Recvd) != 20 {
			t.Fatalf("%s: delivered %d/20", fl, len(c.Hosts[1].Recvd))
		}
		return c.NICs[0].CPUCycles + c.NICs[1].CPUCycles
	}
	e, o := cycles(ESP), cycles(Orig)
	t.Logf("cycles for 20 x 64B: ESP %d, Orig %d (ratio %.2f)", e, o, float64(e)/float64(o))
	if e <= o {
		t.Errorf("ESP cycles (%d) not above Orig (%d)", e, o)
	}
}
