package vmmc

import (
	"bytes"
	"strings"
	"testing"

	"esplang/internal/nic"
	"esplang/internal/obs"
)

// TestTracePingPongEquivalence checks the observability layer's core
// contract on the full testbed: attaching the tracer, profiler, and
// metrics must not change what the simulation computes.
func TestTracePingPongEquivalence(t *testing.T) {
	for _, flavor := range []Flavor{ESP, Orig} {
		plain, err := PingPong(flavor, nic.DefaultConfig(), 1024, 4)
		if err != nil {
			t.Fatalf("%s: plain: %v", flavor, err)
		}
		traced, _, _, _, err := TracePingPong(flavor, nic.DefaultConfig(), 1024, 4)
		if err != nil {
			t.Fatalf("%s: traced: %v", flavor, err)
		}
		if plain != traced {
			t.Errorf("%s: latency changed under tracing: %v ns plain, %v ns traced",
				flavor, plain, traced)
		}
	}
}

// TestTracePingPongTrace checks the trace itself: valid Chrome JSON,
// hardware tracks for both NICs, and (ESP flavor) process tracks and
// rendezvous events from both firmware VMs without track collisions.
func TestTracePingPongTrace(t *testing.T) {
	_, tr, prof, reg, err := TracePingPong(ESP, nic.DefaultConfig(), 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if n == 0 {
		t.Fatal("trace is empty")
	}
	for _, want := range []string{"nic0 hostDMA", "nic1 sendDMA", "recvDMA", "vmmcESP run"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %q", want)
		}
	}

	if prof.TotalCycles() == 0 {
		t.Error("profiler recorded no cycles")
	}
	snap := reg.Snapshot()
	if snap.Counters["sim_events_total"] == 0 {
		t.Error("sim_events_total not collected")
	}
	if len(snap.Counters) == 0 {
		t.Error("no VM counters collected")
	}
}
