package vmmc

import (
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/vm"
)

func TestVerifyFirmwarePasses(t *testing.T) {
	res, err := VerifyFirmware(nic.DefaultConfig(), 2, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("firmware model violates: %v\ntrace:\n%s", res.Violation, traceString(res))
	}
	if res.Truncated {
		t.Error("search truncated; raise the bounds")
	}
	t.Logf("firmware model: %s", res)
}

func TestVerifyFirmwareMoreMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := VerifyFirmware(nic.DefaultConfig(), 3, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("firmware model violates: %v", res.Violation)
	}
	t.Logf("firmware model (3 msgs): %s", res)
}

func TestVerifyFirmwareParallelEquivalence(t *testing.T) {
	// The §5.3 verification run under the parallel frontier search: any
	// worker count explores exactly the same state space as the
	// deterministic sequential search.
	base, err := VerifyFirmware(nic.DefaultConfig(), 2, esplang.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Violation != nil {
		t.Fatalf("firmware model violates: %v", base.Violation)
	}
	for _, w := range []int{2, 4} {
		res, err := VerifyFirmware(nic.DefaultConfig(), 2, esplang.VerifyOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("workers=%d: firmware model violates: %v", w, res.Violation)
		}
		if res.States != base.States || res.Truncated != base.Truncated {
			t.Errorf("workers=%d: states=%d truncated=%v, want states=%d truncated=%v",
				w, res.States, res.Truncated, base.States, base.Truncated)
		}
	}
}

func traceString(res *esplang.VerifyResult) string {
	if res.Violation == nil {
		return ""
	}
	s := ""
	for _, st := range res.Violation.Trace {
		s += "  " + st.Desc + "\n"
	}
	return s
}

func TestVerifyRetransCorrect(t *testing.T) {
	res, err := VerifyRetrans(2, 3, false, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("correct protocol violates: %v\ntrace:\n%s", res.Violation, traceString(res))
	}
	t.Logf("retransmission protocol: %s", res)
}

func TestVerifyRetransSeededBugFound(t *testing.T) {
	// The §5.3 development story: the checker finds the off-by-one rewind
	// that a testbed run would hit only on rare corruption timing.
	res, err := VerifyRetrans(2, 3, true, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("seeded protocol bug not found")
	}
	if len(res.Violation.Trace) == 0 {
		t.Error("no counterexample trace")
	}
	t.Logf("seeded retrans bug: %v", res.Violation)
}

func TestVerifyMemSafetyClean(t *testing.T) {
	res, err := VerifyMemSafety(BugNone, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean model violates: %v", res.Violation)
	}
	if res.States < 10 {
		t.Errorf("suspiciously few states: %d", res.States)
	}
	t.Logf("memory-safety model (clean): %s", res)
}

func TestVerifyMemSafetySeededBugsAllFound(t *testing.T) {
	// §5.3: "The verifier was able to find the bug in every case."
	wantKind := map[MemBug]vm.FaultKind{
		BugLeak:         vm.FaultOutOfObjects,
		BugUseAfterFree: vm.FaultUseAfterFree,
		BugDoubleFree:   vm.FaultDoubleFree,
	}
	for bug, kind := range wantKind {
		t.Run(bug.String(), func(t *testing.T) {
			res, err := VerifyMemSafety(bug, esplang.VerifyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil || res.Violation.Fault == nil {
				t.Fatalf("seeded %s not found", bug)
			}
			if res.Violation.Fault.Kind != kind {
				t.Errorf("found %v, want %v", res.Violation.Fault.Kind, kind)
			}
		})
	}
}

func TestVerifyBitstateMode(t *testing.T) {
	// The §5.1 bit-state mode on the firmware model: partial but cheap.
	prog, err := esplang.Compile(FirmwareModel(nic.DefaultConfig(), 2), esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Verify(esplang.VerifyOptions{
		Mode: esplang.BitState, BitstateBits: 20, EndRecvOK: true, MaxLiveObjects: 64})
	if res.Violation != nil {
		t.Fatalf("bitstate run violates: %v", res.Violation)
	}
	if res.MemBytes != 1<<20/8 {
		t.Errorf("bitstate memory = %d bytes", res.MemBytes)
	}
}

func TestVerifySimulationMode(t *testing.T) {
	// The §5.1/§5.3 development mode: random walks through the firmware.
	prog, err := esplang.Compile(FirmwareModel(nic.DefaultConfig(), 2), esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Verify(esplang.VerifyOptions{
		Mode: esplang.Simulation, Seed: 1, SimRuns: 20, EndRecvOK: true, MaxLiveObjects: 64})
	if res.Violation != nil {
		t.Fatalf("simulation run violates: %v", res.Violation)
	}
}

func TestVerifyTwoNodeModel(t *testing.T) {
	// §5.2: two copies of the firmware communicating over a cross-wired
	// network — the end-to-end sliding-window protocol explored
	// exhaustively, with in-order completion asserted at the receiver.
	res, err := VerifyTwoNode(nic.DefaultConfig(), 2, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("two-node model violates: %v\ntrace:\n%s", res.Violation, traceString(res))
	}
	if res.Truncated {
		t.Error("search truncated")
	}
	t.Logf("two-node model: %s", res)
}

func TestTwoNodeModelDetectsSeededOrderBug(t *testing.T) {
	// Mutating the wire to swap the first two data packets must trip the
	// receiver's in-order assertion — evidence the two-node model really
	// exercises the ordering property.
	src := TwoNodeModel(nic.DefaultConfig(), 2)
	bad := strings.Replace(src,
		"out( netRecvC_1, { seq, ak, isack, msgid, raddr, off, size, total, last, 0});",
		`if (seq == 1 && isack == 0) {
            in( netSendC_0, { $seq2, $ak2, $isack2, $msgid2, $raddr2, $off2, $size2, $total2, $last2, $dest2});
            out( netRecvC_1, { seq2, ak2, isack2, msgid2, raddr2, off2, size2, total2, last2, 0});
            out( netRecvC_1, { seq, ak, isack, msgid, raddr, off, size, total, last, 0});
        } else {
            out( netRecvC_1, { seq, ak, isack, msgid, raddr, off, size, total, last, 0});
        }`, 1)
	if bad == src {
		t.Fatal("mutation did not apply")
	}
	prog, err := esplang.Compile(bad, esplang.CompileOptions{})
	if err != nil {
		t.Fatalf("mutated model does not compile: %v", err)
	}
	res := prog.Verify(esplang.VerifyOptions{EndRecvOK: true, MaxLiveObjects: 64})
	if res.Violation == nil {
		t.Fatal("packet reordering not detected")
	}
	t.Logf("reordering found: %v", res.Violation)
}
