// Package vmmc reproduces the paper's case study: the VMMC (virtual
// memory-mapped communication) firmware for Myrinet network interface
// cards (§2.1), in three flavors sharing one simulated NIC:
//
//   - Orig: the hand-written event-driven state-machine firmware in the
//     style of Appendix A, with the hand-optimized fast paths;
//   - OrigNoFastPaths: the same with fast paths disabled;
//   - ESP: the firmware written in the ESP language (Appendix B style),
//     compiled and executed by the ESP virtual machine, with the
//     simple marshalling/unmarshalling helpers in Go standing in for the
//     paper's 3000 lines of helper C.
//
// All three implement the same protocol: requests are split into
// page-sized chunks, source pages are translated and fetched by the host
// DMA, packets carry piggybacked cumulative acknowledgements, a sliding
// send window bounds in-flight packets (the §5.3 retransmission protocol;
// the simulated wire is lossless so retransmit timers never fire, but the
// bookkeeping is paid), received chunks are translated and stored by the
// host DMA, and a completion notification is posted to the host. Messages
// of at most Config.SmallMsgMax bytes travel inline with the request —
// the paper's 32-byte special case that produces the knee in Figure 5.
package vmmc

import (
	"fmt"

	"esplang/internal/nic"
	"esplang/internal/obs"
	"esplang/internal/sim"
)

// Flavor selects a firmware implementation.
type Flavor int

// The three firmware flavors compared in Figure 5.
const (
	ESP Flavor = iota
	Orig
	OrigNoFastPaths
)

func (f Flavor) String() string {
	switch f {
	case ESP:
		return "vmmcESP"
	case Orig:
		return "vmmcOrig"
	case OrigNoFastPaths:
		return "vmmcOrigNoFastPaths"
	}
	return "?"
}

// Cluster is two machines connected by a Myrinet wire, each with a host
// and a NIC running the selected firmware.
type Cluster struct {
	K     *sim.Kernel
	NICs  [2]*nic.NIC
	Hosts [2]*Host
}

// NewCluster builds a two-node cluster running the given firmware flavor.
func NewCluster(flavor Flavor, cfg nic.Config) (*Cluster, error) {
	k := sim.New()
	c := &Cluster{K: k}
	for i := 0; i < 2; i++ {
		n := nic.New(i, k, cfg)
		c.NICs[i] = n
		c.Hosts[i] = &Host{ID: i, NIC: n, K: k,
			Recvd:       make([]nic.Notification, 0, 16),
			pendingReqs: make([]nic.HostRequest, 0, 4)}
		n.OnNotify(c.Hosts[i].onNotify)
	}
	nic.Connect(c.NICs[0], c.NICs[1])
	for i := 0; i < 2; i++ {
		fw, err := newFirmware(flavor, c.NICs[i])
		if err != nil {
			return nil, err
		}
		c.NICs[i].FW = fw
	}
	if Metrics != nil {
		c.AttachObs(nil, nil, Metrics)
	}
	return c, nil
}

func newFirmware(flavor Flavor, n *nic.NIC) (nic.Firmware, error) {
	switch flavor {
	case Orig:
		return NewOrigFirmware(true), nil
	case OrigNoFastPaths:
		return NewOrigFirmware(false), nil
	case ESP:
		return NewESPFirmware(n)
	}
	return nil, fmt.Errorf("vmmc: unknown flavor %d", flavor)
}

// Run advances the simulation until quiescent or until t nanoseconds.
func (c *Cluster) Run(maxNs int64) {
	c.K.Run(func() bool { return maxNs > 0 && c.K.Now() > maxNs })
}

// procTrackStride separates the two firmware VMs' process tracks in a
// shared trace file: NIC i's ESP processes get track ids i*stride,
// i*stride+1, … — well clear of the NIC hardware tracks (100–130) for
// i > 0, and equal to the raw process ids for NIC 0.
const procTrackStride = 1000

// fwTracer adapts a shared obs.Tracer for one firmware VM: process ids
// are offset and track names prefixed so the two machines of a cluster
// do not collide on the same timeline tracks.
type fwTracer struct {
	t      obs.Tracer
	off    int
	prefix string
}

func (w fwTracer) shift(proc int) int {
	if proc < 0 {
		return proc // -1 = external environment, not a track
	}
	return proc + w.off
}

func (w fwTracer) ProcStart(ts int64, proc int, name string) {
	w.t.ProcStart(ts, w.shift(proc), w.prefix+name)
}
func (w fwTracer) ProcStop(ts int64, proc int, status string) {
	w.t.ProcStop(ts, w.shift(proc), status)
}
func (w fwTracer) Rendezvous(ts int64, ch string, sender, receiver int) {
	w.t.Rendezvous(ts, w.prefix+ch, w.shift(sender), w.shift(receiver))
}
func (w fwTracer) Alloc(ts int64, proc, live int) { w.t.Alloc(ts, w.shift(proc), live) }
func (w fwTracer) Free(ts int64, proc, live int)  { w.t.Free(ts, w.shift(proc), live) }
func (w fwTracer) Fault(ts int64, proc int, msg string) {
	w.t.Fault(ts, w.shift(proc), w.prefix+msg)
}
func (w fwTracer) Poll(ts int64, ch string) { w.t.Poll(ts, w.prefix+ch) }

// AttachObs attaches the observability stack to the whole cluster:
// sim-kernel metrics, hardware timeline spans on both NICs, and — when
// the firmware is the ESP flavor — VM process timelines, a shared
// source-line cycle profile, and VM metrics from both machines. Any
// argument may be nil to skip that sink.
func (c *Cluster) AttachObs(tr *obs.ChromeTracer, prof *obs.Profiler, reg *obs.Metrics) {
	if c.K != nil {
		c.K.SetMetrics(reg)
	}
	var span obs.SpanEmitter
	if tr != nil {
		span = tr
	}
	for i, n := range c.NICs {
		n.SetTrace(span)
		fw, ok := n.FW.(*ESPFirmware)
		if !ok {
			continue
		}
		var vt obs.Tracer
		if tr != nil {
			vt = fwTracer{t: tr, off: i * procTrackStride, prefix: fmt.Sprintf("nic%d ", i)}
		}
		fw.AttachObs(vt, prof, reg)
	}
}

// ---------------------------------------------------------------------------
// Host library (the VMMC user-level API of Figure 2)

// Host is the host-side VMMC library of one machine: it posts requests to
// the NIC and receives completion notifications.
type Host struct {
	ID  int
	NIC *nic.NIC
	K   *sim.Kernel

	nextMsgID int64
	Recvd     []nic.Notification
	// OnRecv, when set, is called for every received-message notification.
	OnRecv func(nic.Notification)

	BytesRecvd int64

	// pendingReqs holds request descriptors crossing the I/O bus. The bus
	// delay is constant and the kernel fires equal-time events in schedule
	// order, so a FIFO plus a handler event per post replaces the closure
	// Send used to allocate per message.
	pendingReqs []nic.HostRequest
}

// Fire implements sim.Handler: the oldest posted request descriptor has
// crossed the I/O bus and lands in the NIC request queue.
func (h *Host) Fire(int) {
	r := h.pendingReqs[0]
	copy(h.pendingReqs, h.pendingReqs[1:])
	h.pendingReqs = h.pendingReqs[:len(h.pendingReqs)-1]
	h.NIC.PostRequest(r)
}

func (h *Host) post(req nic.HostRequest) {
	h.pendingReqs = append(h.pendingReqs, req)
	h.K.AfterEvent(postDelayNs, h, 0)
}

// postDelayNs models the host-side cost of writing a request descriptor
// over the I/O bus.
const postDelayNs = 300

// Send posts a VMMC send: size bytes from local address vaddr to remote
// address raddr on the (single) peer. It returns the message id.
func (h *Host) Send(vaddr, raddr int64, size int) int64 {
	h.nextMsgID++
	id := h.nextMsgID
	h.post(nic.HostRequest{Dest: 1 - h.ID, VAddr: vaddr, RAddr: raddr, Size: size, MsgID: id})
	return id
}

// Update posts a page-table update (vaddr -> paddr).
func (h *Host) Update(vaddr, paddr int64) {
	h.post(nic.HostRequest{IsUpdate: true, UpdVAddr: vaddr, UpdPAddr: paddr})
}

func (h *Host) onNotify(nt nic.Notification) {
	h.Recvd = append(h.Recvd, nt)
	h.BytesRecvd += int64(nt.Size)
	if h.OnRecv != nil {
		h.OnRecv(nt)
	}
}

// ---------------------------------------------------------------------------
// Microbenchmark drivers (§6.2)

// PingPong measures one-way latency: a message bounces between the two
// machines rounds times; the result is the average one-way time in
// nanoseconds.
func PingPong(flavor Flavor, cfg nic.Config, size, rounds int) (float64, error) {
	c, err := NewCluster(flavor, cfg)
	if err != nil {
		return 0, err
	}
	return pingPong(c, flavor, size, rounds)
}

// TracePingPong runs PingPong with the full observability stack attached
// and returns the populated sinks along with the latency: a Chrome trace
// with one track per DMA engine, per NIC CPU, and (ESP flavor) per ESP
// process; a source-line cycle profile aggregated over both firmware
// VMs; and the metrics registry. Trace timestamps are simulation
// nanoseconds (the tracer is built with scale 1e-3, so they land in
// trace-standard microseconds).
func TracePingPong(flavor Flavor, cfg nic.Config, size, rounds int) (float64, *obs.ChromeTracer, *obs.Profiler, *obs.Metrics, error) {
	c, err := NewCluster(flavor, cfg)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	tr := obs.NewChromeTracer(1e-3)
	prof := obs.NewProfiler(flavor.String())
	reg := obs.NewMetrics()
	c.AttachObs(tr, prof, reg)
	lat, err := pingPong(c, flavor, size, rounds)
	return lat, tr, prof, reg, err
}

func pingPong(c *Cluster, flavor Flavor, size, rounds int) (float64, error) {
	remaining := rounds
	c.Hosts[1].OnRecv = func(nic.Notification) {
		if remaining > 0 {
			c.Hosts[1].Send(0, 0, size)
		}
	}
	c.Hosts[0].OnRecv = func(nic.Notification) {
		remaining--
		if remaining > 0 {
			c.Hosts[0].Send(0, 0, size)
		}
	}
	start := c.K.Now()
	c.Hosts[0].Send(0, 0, size)
	c.Run(0)
	if remaining != 0 {
		return 0, fmt.Errorf("vmmc: pingpong stalled with %d rounds left (%s, size %d)", remaining, flavor, size)
	}
	elapsed := c.K.Now() - start
	return float64(elapsed) / float64(2*rounds), nil
}

// OneWay measures unidirectional bandwidth: node 0 streams count messages
// of the given size to node 1; the result is MB/s of payload delivered.
func OneWay(flavor Flavor, cfg nic.Config, size, count int) (float64, error) {
	c, err := NewCluster(flavor, cfg)
	if err != nil {
		return 0, err
	}
	// Keep a bounded number of requests outstanding, like a streaming
	// application refilling its send queue.
	const outstanding = 8
	posted := 0
	post := func() {
		for posted < count && posted-len(c.Hosts[1].Recvd) < outstanding {
			c.Hosts[0].Send(0, 0, size)
			posted++
		}
	}
	c.Hosts[1].OnRecv = func(nic.Notification) { post() }
	start := c.K.Now()
	post()
	c.Run(0)
	if len(c.Hosts[1].Recvd) != count {
		return 0, fmt.Errorf("vmmc: one-way stream stalled: %d/%d delivered (%s, size %d)",
			len(c.Hosts[1].Recvd), count, flavor, size)
	}
	elapsed := c.K.Now() - start
	return mbps(int64(size)*int64(count), elapsed), nil
}

// Bidirectional measures total bandwidth with both nodes streaming
// simultaneously; the result is total MB/s (both directions).
func Bidirectional(flavor Flavor, cfg nic.Config, size, countPerSide int) (float64, error) {
	c, err := NewCluster(flavor, cfg)
	if err != nil {
		return 0, err
	}
	const outstanding = 8
	posted := [2]int{}
	post := func(side int) {
		other := 1 - side
		for posted[side] < countPerSide && posted[side]-len(c.Hosts[other].Recvd) < outstanding {
			c.Hosts[side].Send(0, 0, size)
			posted[side]++
		}
	}
	c.Hosts[0].OnRecv = func(nic.Notification) { post(1) }
	c.Hosts[1].OnRecv = func(nic.Notification) { post(0) }
	start := c.K.Now()
	post(0)
	post(1)
	c.Run(0)
	got := len(c.Hosts[0].Recvd) + len(c.Hosts[1].Recvd)
	if got != 2*countPerSide {
		return 0, fmt.Errorf("vmmc: bidirectional stream stalled: %d/%d delivered (%s, size %d)",
			got, 2*countPerSide, flavor, size)
	}
	elapsed := c.K.Now() - start
	return mbps(2*int64(size)*int64(countPerSide), elapsed), nil
}

// mbps converts bytes over nanoseconds to megabytes per second.
func mbps(bytes, ns int64) float64 {
	if ns == 0 {
		return 0
	}
	return float64(bytes) / float64(ns) * 1e9 / 1e6
}
