package esplang_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/vm"
)

// porVerdict classifies a model-checking result for POR-vs-full
// comparison: pass, deadlock, or the fault kind with its source
// location. State counts are deliberately excluded — reduction changes
// them by design — and FaultOutOfObjects is collapsed to its kind
// alone, because the global live-object peak depends on which
// interleaving the search walks (the same accepted divergence the
// optimization-level oracle has).
func porVerdict(res *esplang.VerifyResult) string {
	v := res.Violation
	switch {
	case v == nil:
		return "pass"
	case v.Deadlock:
		return "deadlock"
	case v.Fault == nil:
		return "violation"
	case v.Fault.Kind == vm.FaultOutOfObjects:
		return v.Fault.Kind.String()
	default:
		return fmt.Sprintf("%s at %s", v.Fault.Kind, v.Fault.Location())
	}
}

// TestPORCorpusEquivalence: on every shipped program — the samples and
// the whole vet corpus — an ample-set reduced search must reach exactly
// the verdict of the full search: same pass/deadlock/fault class, and
// for faults the same kind at the same source location.
func TestPORCorpusEquivalence(t *testing.T) {
	var files []string
	for _, pat := range []string{"testdata/*.esp", "testdata/vet/*.esp"} {
		fs, err := filepath.Glob(pat)
		if err != nil || len(fs) == 0 {
			t.Fatalf("no programs match %s: %v", pat, err)
		}
		files = append(files, fs...)
	}
	for _, path := range files {
		path := path
		name := strings.TrimSuffix(strings.ReplaceAll(path, "testdata/", ""), ".esp")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := esplang.CompileFile(path, esplang.CompileOptions{Name: path})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opts := esplang.VerifyOptions{
				Workers:   1,
				EndRecvOK: true,
				MaxStates: 300000,
			}
			full := prog.Verify(opts)
			opts.Reduction = esplang.AmpleSets
			red := prog.Verify(opts)
			if full.Truncated || red.Truncated {
				t.Skipf("state space exceeds the comparison bound (full %d, por %d states)",
					full.States, red.States)
			}
			if fv, rv := porVerdict(full), porVerdict(red); fv != rv {
				t.Errorf("verdicts diverge: full=%q por=%q", fv, rv)
			}
			if red.States > full.States {
				t.Errorf("reduction grew the state space: full=%d por=%d", full.States, red.States)
			}
		})
	}
}
