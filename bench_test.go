// Benchmarks regenerating the paper's evaluation (PLDI 2001, §6.2 and
// §5.3). Each benchmark corresponds to one figure or table; the reported
// custom metrics are the simulated quantities the paper plots (latency in
// microseconds, bandwidth in MB/s, verifier states), while ns/op measures
// the host cost of running the simulation itself.
//
// Run everything:
//
//	go test -bench=. -benchmem
package esplang_test

import (
	"fmt"
	"testing"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/vmmc"
)

var figFlavors = []vmmc.Flavor{vmmc.ESP, vmmc.Orig, vmmc.OrigNoFastPaths}

// BenchmarkFig5aLatency regenerates Figure 5(a): one-way latency for 4 B
// to 4 KB messages, for all three firmware flavors.
func BenchmarkFig5aLatency(b *testing.B) {
	cfg := nic.DefaultConfig()
	for _, fl := range figFlavors {
		for _, size := range []int{4, 64, 512, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", fl, size), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					v, err := vmmc.PingPong(fl, cfg, size, 10)
					if err != nil {
						b.Fatal(err)
					}
					last = v
				}
				b.ReportMetric(last/1000, "us-latency")
			})
		}
	}
}

// BenchmarkFig5bBandwidth regenerates Figure 5(b): one-way bandwidth.
func BenchmarkFig5bBandwidth(b *testing.B) {
	cfg := nic.DefaultConfig()
	for _, fl := range figFlavors {
		for _, size := range []int{64, 1024, 4096, 65536} {
			b.Run(fmt.Sprintf("%s/%dB", fl, size), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					v, err := vmmc.OneWay(fl, cfg, size, 30)
					if err != nil {
						b.Fatal(err)
					}
					last = v
				}
				b.ReportMetric(last, "MB/s")
			})
		}
	}
}

// BenchmarkFig5cBidirectional regenerates Figure 5(c): total bandwidth
// with both machines streaming.
func BenchmarkFig5cBidirectional(b *testing.B) {
	cfg := nic.DefaultConfig()
	for _, fl := range figFlavors {
		for _, size := range []int{1024, 4096, 65536} {
			b.Run(fmt.Sprintf("%s/%dB", fl, size), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					v, err := vmmc.Bidirectional(fl, cfg, size, 15)
					if err != nil {
						b.Fatal(err)
					}
					last = v
				}
				b.ReportMetric(last, "MB/s-total")
			})
		}
	}
}

// BenchmarkVerifyMemSafety regenerates the §5.3 verification statistics:
// exhaustively checking memory safety of the firmware's data path (the
// paper: 2251 states, 0.5 s, 2.2 MB).
func BenchmarkVerifyMemSafety(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		res, err := vmmc.VerifyMemSafety(vmmc.BugNone, esplang.VerifyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation != nil {
			b.Fatalf("violation: %v", res.Violation)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkVerifyFirmwareModel exhaustively checks the whole firmware
// model with a 2-message nondeterministic driver.
func BenchmarkVerifyFirmwareModel(b *testing.B) {
	cfg := nic.DefaultConfig()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := vmmc.VerifyFirmware(cfg, 2, esplang.VerifyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation != nil {
			b.Fatalf("violation: %v", res.Violation)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkVerifyRetrans checks the §5.3 retransmission protocol.
func BenchmarkVerifyRetrans(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		res, err := vmmc.VerifyRetrans(2, 3, false, esplang.VerifyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation != nil {
			b.Fatalf("violation: %v", res.Violation)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// --- §6.1 runtime primitives and design ablations -------------------------

const probeSrc = `
type dataT = array of int
type msgT = record of { tag: int, data: dataT }
channel c: msgT
channel done: int external reader
process producer {
    $n = 0;
    while (n < 100) {
        $d: dataT = { 8 -> n};
        out( c, { n, d});
        unlink( d);
        n = n + 1;
    }
}
process consumer {
    $n = 0;
    while (n < 100) {
        in( c, { $tag, $data});
        unlink( data);
        n = n + 1;
    }
    out( done, 1);
}
`

func runProbe(b *testing.B, cfg esplang.MachineConfig) *esplang.Machine {
	b.Helper()
	prog, err := esplang.Compile(probeSrc, esplang.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m := prog.Machine(cfg)
	if err := m.BindReader("done", &esplang.CollectReader{}); err != nil {
		b.Fatal(err)
	}
	m.Run()
	if m.Fault() != nil {
		b.Fatalf("fault: %v", m.Fault())
	}
	return m
}

// BenchmarkContextSwitch measures the simulated cycle cost per message of
// the stack-less rendezvous pipeline (Table: overhead).
func BenchmarkContextSwitch(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		m := runProbe(b, esplang.MachineConfig{})
		cycles = m.Cycles
	}
	b.ReportMetric(float64(cycles)/100, "cycles/msg")
}

// BenchmarkAblationWaitQueues compares the paper's per-process bit-masks
// (§6.1) against per-pattern wait queues.
func BenchmarkAblationWaitQueues(b *testing.B) {
	b.Run("bitmask", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			cycles = runProbe(b, esplang.MachineConfig{}).Cycles
		}
		b.ReportMetric(float64(cycles)/100, "cycles/msg")
	})
	b.Run("waitqueues", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			cycles = runProbe(b, esplang.MachineConfig{UseWaitQueues: true}).Cycles
		}
		b.ReportMetric(float64(cycles)/100, "cycles/msg")
	})
}

// BenchmarkAblationDeepCopy compares refcount-based transfer (§6.2)
// against physical deep copies.
func BenchmarkAblationDeepCopy(b *testing.B) {
	b.Run("refcount", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			cycles = runProbe(b, esplang.MachineConfig{}).Cycles
		}
		b.ReportMetric(float64(cycles)/100, "cycles/msg")
	})
	b.Run("deepcopy", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			cycles = runProbe(b, esplang.MachineConfig{ForceDeepCopy: true}).Cycles
		}
		b.ReportMetric(float64(cycles)/100, "cycles/msg")
	})
}

// optProbeSrc exercises the §6.1 passes: constant expressions, copies
// through temporaries, constant branches, and a dead-source mutability
// cast.
const optProbeSrc = `
channel c: array of int
channel done: int external reader
process maker {
    $n = 0;
    while (n < 100) {
        $hdrWords = (16 + 4 * 2) / 4;
        $size = hdrWords;
        $total = size;
        $a: #array of int = #{ 4 -> total};
        if (true) { a[0] = total + 1 * 1; }
        out( c, immutable(a));
        n = n + 1;
    }
}
process user {
    $n = 0;
    while (n < 100) {
        in( c, $d);
        assert( d[0] == 7);
        unlink( d);
        n = n + 1;
    }
    out( done, 1);
}
`

// BenchmarkAblationOptimizer compares compiled code size and simulated
// cycles with and without the §6.1 IR passes (constant folding, copy
// propagation, DCE, cast reuse).
func BenchmarkAblationOptimizer(b *testing.B) {
	run := func(b *testing.B, opts esplang.CompileOptions) {
		var instrs int
		var cycles int64
		for i := 0; i < b.N; i++ {
			prog, err := esplang.Compile(optProbeSrc, opts)
			if err != nil {
				b.Fatal(err)
			}
			instrs = prog.Stats().Instructions
			m := prog.Machine(esplang.MachineConfig{})
			if err := m.BindReader("done", &esplang.CollectReader{}); err != nil {
				b.Fatal(err)
			}
			m.Run()
			if m.Fault() != nil {
				b.Fatalf("fault: %v", m.Fault())
			}
			cycles = m.Cycles
		}
		b.ReportMetric(float64(instrs), "IR-instrs")
		b.ReportMetric(float64(cycles)/100, "cycles/msg")
	}
	b.Run("optimized", func(b *testing.B) { run(b, esplang.CompileOptions{}) })
	b.Run("unoptimized", func(b *testing.B) { run(b, esplang.CompileOptions{NoOptimize: true}) })
}

// BenchmarkCompiler measures compiler throughput on the VMMC firmware.
func BenchmarkCompiler(b *testing.B) {
	src := vmmc.ESPSource(nic.DefaultConfig())
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := esplang.Compile(src, esplang.CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMThroughput measures host-side interpreter speed (messages
// per host-second through the probe pipeline).
func BenchmarkVMThroughput(b *testing.B) {
	prog, err := esplang.Compile(probeSrc, esplang.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := prog.Machine(esplang.MachineConfig{})
		if err := m.BindReader("done", &esplang.CollectReader{}); err != nil {
			b.Fatal(err)
		}
		m.Run()
	}
}
