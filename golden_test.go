package esplang_test

import (
	"os"
	"path/filepath"
	"testing"

	esplang "esplang"
	"esplang/internal/ast"
	"esplang/internal/parser"
)

// checkGolden compares got against the golden file, rewriting it instead
// when ESP_UPDATE_GOLDEN is set.
func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if os.Getenv("ESP_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with ESP_UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with ESP_UPDATE_GOLDEN=1 to update)\ngot:\n%s", goldenPath, got)
	}
}

// TestFormatGolden locks the canonical formatting of every sample: one
// espfmt pass must match the golden byte-for-byte, and a second pass must
// be idempotent over the first.
func TestFormatGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			once := ast.Print(tree)
			tree2, err := parser.Parse([]byte(once))
			if err != nil {
				t.Fatalf("formatted output does not reparse: %v", err)
			}
			twice := ast.Print(tree2)
			if once != twice {
				t.Errorf("formatting is not idempotent")
			}
			checkGolden(t, f+".fmt.golden", once)
		})
	}
}

// TestAppendixBDisasmGolden locks the compiled (and optimized) IR of the
// paper's Appendix B program — any change to the compiler's lowering or
// the optimizer pipeline shows up as a reviewable golden diff.
func TestAppendixBDisasmGolden(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/appendixb.esp", esplang.CompileOptions{Name: "appendixb"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/appendixb.disasm.golden", prog.Disasm())
}

// TestAppendixBFusedDisasmGolden locks the fused-engine translation of
// the same program — the superinstruction code the default VM engine
// actually executes. -dump-fused in espc prints exactly this, so the
// golden keeps the fused disassembler honest after fusion rule changes.
func TestAppendixBFusedDisasmGolden(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/appendixb.esp", esplang.CompileOptions{Name: "appendixb"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/appendixb.fused.golden", prog.DisasmFused())
}

// TestPipelineFusedDisasmGolden locks the fused rendering of a program
// whose counter loops actually fuse: fconstst, flccmpbr, fincrlocal,
// floadsend, and friends all appear here with their base-pc ranges.
func TestPipelineFusedDisasmGolden(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{Name: "pipeline"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/pipeline.fused.golden", prog.DisasmFused())
}
