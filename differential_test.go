package esplang_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/obs"
	"esplang/internal/vmmc"
)

// Differential tests for the three execution engines: the fused
// hot-path engine and the process-fused engine (static rendezvous
// scheduling, direct transfers, heap recycling) must both be
// observationally indistinguishable from the baseline interpreter —
// same outputs, same faults (down to file:line), same cycle meter, same
// event statistics, same trace bytes, and same model-checker verdicts
// and state counts. Stats.DirectXfers is the one deliberate exception:
// it is a diagnostic counter only the process-fused engine increments
// (charging zero cycles), so comparisons zero it first.

var allEngines = []esplang.Engine{esplang.EngineBaseline, esplang.EngineFused, esplang.EngineProcFused}

// engineRun executes path with the canonical inputs under one engine and
// renders everything observable plus the cycle/statistics counters.
func engineRun(t *testing.T, path string, engine esplang.Engine) string {
	t.Helper()
	prog, err := esplang.CompileFile(path, esplang.CompileOptions{VerifyIR: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64, Engine: engine})
	readers := feedInputs(t, prog, m)
	m.Run()

	var b bytes.Buffer
	if f := m.Fault(); f != nil {
		fmt.Fprintf(&b, "fault: %v\n", f)
	} else {
		b.WriteString("fault: none\n")
	}
	st := m.Stats
	st.DirectXfers = 0 // diagnostic-only; see the package comment above
	fmt.Fprintf(&b, "cycles: %d\nstats: %+v\n", m.Cycles, st)
	for _, ch := range prog.IR.Channels {
		r, ok := readers[ch.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:", ch.Name)
		for _, v := range r.Values {
			b.WriteString(" ")
			b.WriteString(renderSnap(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestEngineDifferentialTestdata: every sample program behaves
// identically — outputs, fault state, cycles, and statistics — under
// all three engines.
func TestEngineDifferentialTestdata(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			base := engineRun(t, f, esplang.EngineBaseline)
			for _, engine := range allEngines[1:] {
				if got := engineRun(t, f, engine); got != base {
					t.Errorf("%v diverges from baseline:\n--- baseline ---\n%s--- %v ---\n%s", engine, base, engine, got)
				}
			}
		})
	}
}

// faultPrograms trip a runtime fault inside code the fuser groups into
// superinstructions, so the fused engine must materialize the exact
// baseline fault — kind, message, PC, and source position.
var faultPrograms = []struct{ name, src string }{
	{"div-by-zero", `
channel outC: int external reader
process p {
    $a = 10;
    $b = 0;
    $c = a / b;
    out( outC, c);
}`},
	{"mod-by-zero", `
channel outC: int external reader
process p {
    $a = 10;
    $b = 0;
    out( outC, a % b);
}`},
	{"assert-fail", `
channel outC: int external reader
process p {
    $n = 3;
    $m = n + 4;
    assert( m == 0);
    out( outC, m);
}`},
	{"use-after-free", `
channel outC: int external reader
process p {
    $d: array of int = { 4 -> 7};
    unlink( d);
    out( outC, d[0]);
}`},
}

// TestEngineDifferentialFaults: fault identity across engines, including
// the source file:line the fault reports.
func TestEngineDifferentialFaults(t *testing.T) {
	for _, tc := range faultPrograms {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				fault  esplang.Fault
				cycles int64
				stats  string
			}
			var got [3]outcome
			for i, engine := range allEngines {
				prog, err := esplang.Compile(tc.src, esplang.CompileOptions{File: tc.name + ".esp"})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				m := prog.Machine(esplang.MachineConfig{Engine: engine})
				if err := m.BindReader("outC", &esplang.CollectReader{}); err != nil {
					t.Fatal(err)
				}
				m.Run()
				f := m.Fault()
				if f == nil {
					t.Fatalf("engine %v: expected a fault", engine)
				}
				if f.Location() == "" {
					t.Fatalf("engine %v: fault carries no source location: %v", engine, f)
				}
				st := m.Stats
				st.DirectXfers = 0
				got[i] = outcome{fault: *f, cycles: m.Cycles, stats: fmt.Sprintf("%+v", st)}
			}
			if got[0] != got[1] || got[0] != got[2] {
				t.Errorf("fault outcomes diverge:\nbaseline:  %+v\nfused:     %+v\nprocfused: %+v", got[0], got[1], got[2])
			}
		})
	}
}

// TestEngineDifferentialTraces: the Chrome trace-event stream (whose
// timestamps are derived from the cycle meter) is byte-identical across
// engines.
func TestEngineDifferentialTraces(t *testing.T) {
	var traces [3]bytes.Buffer
	for i, engine := range allEngines {
		prog, err := esplang.CompileFile("testdata/add5.esp", esplang.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := prog.Machine(esplang.MachineConfig{Engine: engine})
		tr := obs.NewChromeTracer(1)
		m.SetTracer(tr)
		w := &esplang.QueueWriter{}
		for _, v := range []int64{1, 10, 37} {
			v := v
			w.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
		}
		if err := m.BindWriter("inC", w); err != nil {
			t.Fatal(err)
		}
		if err := m.BindReader("outC", &esplang.CollectReader{}); err != nil {
			t.Fatal(err)
		}
		m.Run()
		if err := tr.Write(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) || !bytes.Equal(traces[0].Bytes(), traces[2].Bytes()) {
		t.Errorf("trace streams diverge:\n--- baseline ---\n%s\n--- fused ---\n%s\n--- procfused ---\n%s",
			traces[0].String(), traces[1].String(), traces[2].String())
	}
}

// TestEngineDifferentialVerify: the model checker visits the same state
// space under either engine — identical verdict, state count, and
// transition count (Workers: 1 makes the counts deterministic).
func TestEngineDifferentialVerify(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got [3]string
	for i, engine := range allEngines {
		res := prog.Verify(esplang.VerifyOptions{Workers: 1, Engine: engine})
		if res.Violation != nil {
			t.Fatalf("engine %v: unexpected violation: %v", engine, res.Violation)
		}
		got[i] = fmt.Sprintf("states=%d transitions=%d truncated=%v", res.States, res.Transitions, res.Truncated)
	}
	if got[0] != got[1] || got[0] != got[2] {
		t.Errorf("search results diverge: baseline %s, fused %s, procfused %s", got[0], got[1], got[2])
	}
}

// TestEngineDifferentialVerifySeededBugs: every seeded memory bug and the
// buggy retransmission protocol are found under both engines, with the
// same counterexample fault and (deterministic) state count.
func TestEngineDifferentialVerifySeededBugs(t *testing.T) {
	for _, bug := range []vmmc.MemBug{vmmc.BugNone, vmmc.BugLeak, vmmc.BugUseAfterFree, vmmc.BugDoubleFree} {
		t.Run(bug.String(), func(t *testing.T) {
			var got [3]string
			for i, engine := range allEngines {
				res, err := vmmc.VerifyMemSafety(bug, esplang.VerifyOptions{Workers: 1, Engine: engine})
				if err != nil {
					t.Fatal(err)
				}
				viol := "none"
				if res.Violation != nil {
					viol = res.Violation.Fault.Error()
				}
				got[i] = fmt.Sprintf("states=%d violation=%s", res.States, viol)
			}
			if got[0] != got[1] || got[0] != got[2] {
				t.Errorf("verdicts diverge:\nbaseline:  %s\nfused:     %s\nprocfused: %s", got[0], got[1], got[2])
			}
		})
	}
	t.Run("retrans-buggy", func(t *testing.T) {
		var got [3]string
		for i, engine := range allEngines {
			res, err := vmmc.VerifyRetrans(2, 3, true, esplang.VerifyOptions{Workers: 1, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("engine %v: seeded retransmission bug not found", engine)
			}
			got[i] = fmt.Sprintf("states=%d fault=%s", res.States, res.Violation.Fault.Error())
		}
		if got[0] != got[1] || got[0] != got[2] {
			t.Errorf("verdicts diverge:\nbaseline:  %s\nfused:     %s\nprocfused: %s", got[0], got[1], got[2])
		}
	})
}

// TestEngineDifferentialVMMC: the full firmware simulation — VM bridged
// to the simulated NIC — reports identical one-way latency under both
// engines, because both charge the same cycle cost model.
func TestEngineDifferentialVMMC(t *testing.T) {
	cfg := nic.DefaultConfig()
	defer func(prev esplang.Engine) { vmmc.Engine = prev }(vmmc.Engine)
	var lat [3]float64
	for i, engine := range allEngines {
		vmmc.Engine = engine
		v, err := vmmc.PingPong(vmmc.ESP, cfg, 64, 5)
		if err != nil {
			t.Fatal(err)
		}
		lat[i] = v
	}
	if lat[0] != lat[1] || lat[0] != lat[2] {
		t.Errorf("firmware latency diverges: baseline %.3f ns, fused %.3f ns, procfused %.3f ns", lat[0], lat[1], lat[2])
	}
}

// TestEngineProfilerParity: installing a profiler routes execution
// through the baseline loop (the per-instruction decomposition cannot be
// charged from fused groups), so the profile and counters of a
// fused-configured machine match a baseline machine exactly.
func TestEngineProfilerParity(t *testing.T) {
	var got [3]string
	for i, engine := range allEngines {
		prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := prog.Machine(esplang.MachineConfig{Engine: engine})
		prof := obs.NewProfiler("pipeline.esp")
		m.SetProfiler(prof)
		m.Run()
		if f := m.Fault(); f != nil {
			t.Fatalf("engine %v: %v", engine, f)
		}
		got[i] = fmt.Sprintf("cycles=%d stats=%+v\n%s", m.Cycles, m.Stats, prof.Report(prog.Source, 20))
	}
	if got[0] != got[1] || got[0] != got[2] {
		t.Errorf("profiles diverge:\n--- baseline ---\n%s\n--- fused ---\n%s\n--- procfused ---\n%s", got[0], got[1], got[2])
	}
}

// TestEngineDifferentialTracesTestdata: the full trace-event stream of
// every sample program — timestamps derived from the cycle meter — is
// byte-identical between the baseline and process-fused engines, so the
// static schedule's fast paths (direct transfers, narrowed scans, heap
// recycling) are invisible to every observer.
func TestEngineDifferentialTracesTestdata(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			var traces [2]bytes.Buffer
			for i, engine := range []esplang.Engine{esplang.EngineBaseline, esplang.EngineProcFused} {
				prog, err := esplang.CompileFile(f, esplang.CompileOptions{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64, Engine: engine})
				tr := obs.NewChromeTracer(1)
				m.SetTracer(tr)
				feedInputs(t, prog, m)
				m.Run()
				if err := tr.Write(&traces[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
				t.Errorf("trace streams diverge:\n--- baseline ---\n%s\n--- procfused ---\n%s",
					traces[0].String(), traces[1].String())
			}
		})
	}
}

// TestEngineDifferentialVerifyParallel: with several model-checker
// workers racing over the frontier, the process-fused engine still
// explores exactly the baseline's state space (the exhaustive search's
// state count is worker-count-invariant).
func TestEngineDifferentialVerifyParallel(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got [3]string
	for i, engine := range allEngines {
		res := prog.Verify(esplang.VerifyOptions{Workers: 4, Engine: engine})
		if res.Violation != nil {
			t.Fatalf("engine %v: unexpected violation: %v", engine, res.Violation)
		}
		got[i] = fmt.Sprintf("states=%d transitions=%d", res.States, res.Transitions)
	}
	if got[0] != got[1] || got[0] != got[2] {
		t.Errorf("parallel search diverges: baseline %s, fused %s, procfused %s", got[0], got[1], got[2])
	}
}
