package esplang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"esplang/internal/fuzz"
)

// TestFuzzRegressions replays every minimized fuzzer-found program in
// testdata/fuzz through the full differential oracle. Each file opens
// with a "//fuzz: outcome=<label>" header naming the expected benign
// classification; the oracle itself must report zero bugs — these are
// exactly the programs that once exposed toolchain divergences, so any
// regression shows up as a cross-engine, optimizer, model-checker, or
// backend disagreement.
func TestFuzzRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.esp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fuzz regression corpus found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want := expectedOutcome(t, string(src))
			rep := fuzz.RunDifferential(strings.TrimSuffix(filepath.Base(path), ".esp"), string(src), fuzz.Options{
				MCMaxStates: 4000,
				MCMaxDepth:  4000,
			})
			for _, b := range rep.Bugs {
				t.Errorf("oracle bug [%s @ %s]:\n%s", b.Kind, b.Stage, b.Detail)
			}
			if rep.Outcome != want {
				t.Errorf("outcome = %q, want %q", rep.Outcome, want)
			}
		})
	}
}

// TestFuzzRegressionsCompiled replays the same corpus with the
// AOT-compiled oracle stage enabled: every minimized program must also
// build through the Go backend and run bit-identically to the baseline
// engine in its generated subprocess. The model-checker stages are
// skipped — this test isolates the fourth engine column. Skips cleanly
// without a host toolchain.
func TestFuzzRegressionsCompiled(t *testing.T) {
	requireToolchain(t)
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.esp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fuzz regression corpus found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rep := fuzz.RunDifferential(strings.TrimSuffix(filepath.Base(path), ".esp"), string(src), fuzz.Options{
				SkipMC:   true,
				Compiled: true,
			})
			for _, b := range rep.Bugs {
				t.Errorf("oracle bug [%s @ %s]:\n%s", b.Kind, b.Stage, b.Detail)
			}
		})
	}
}

// expectedOutcome extracts the "//fuzz: outcome=<label>" header.
func expectedOutcome(t *testing.T, src string) string {
	t.Helper()
	line, _, _ := strings.Cut(src, "\n")
	const prefix = "//fuzz: outcome="
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("corpus file lacks %q header (first line: %q)", prefix, line)
	}
	return strings.TrimPrefix(line, prefix)
}
