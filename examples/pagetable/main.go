// Pagetable runs the paper's Appendix B program end to end: the page
// table process, a DMA engine process, and SM1, with user requests
// arriving on an external channel and outgoing packets leaving on another.
//
// The run demonstrates the features §4 walks through: union pattern
// dispatch (send vs update requests), the @/ret reply-routing convention,
// dynamic arrays, and explicit reference counting whose correctness the
// heap statistics confirm at the end.
package main

import (
	"fmt"
	"log"

	esplang "esplang"
)

const src = `
type dataT = array of int
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT}

const TABLE_SIZE = 16;

channel ptReqC: record of { ret: int, vAddr: int}
channel ptReplyC: record of { ret: int, pAddr: int}
channel dmaReqC: record of { ret: int, pAddr: int, size: int}
channel dmaDataC: record of { ret: int, data: dataT}
channel SM2C: record of { dest: int, data: dataT} external reader
channel userReqC: userT external writer

interface userReq( out userReqC) {
    Send( { send |> { $dest, $vAddr, $size}}),
    Update( { update |> { $vAddr, $pAddr}}),
}

// Appendix B: the page table process.
process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vAddr})) {
                out( ptReplyC, { ret, table[vAddr]});
            }
            case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
                table[vAddr] = pAddr;
            }
        }
    }
}

// The DMA engine: returns size words of data read from pAddr.
process dma {
    while (true) {
        in( dmaReqC, { $ret, $pAddr, $size});
        $data: dataT = { size -> pAddr};
        out( dmaDataC, { ret, data});
        unlink( data);
    }
}

// Appendix B: SM1, the send state machine.
process SM1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vAddr, $size}});
        out( ptReqC, { @, vAddr});
        in( ptReplyC, { @, $pAddr});
        out( dmaReqC, { @, pAddr, size});
        in( dmaDataC, { @, $sendData});
        out( SM2C, { dest, sendData});
        unlink( sendData);
    }
}
`

func main() {
	prog, err := esplang.Compile(src, esplang.CompileOptions{Name: "pagetable"})
	if err != nil {
		log.Fatal(err)
	}
	s := prog.Stats()
	fmt.Printf("compiled Appendix B: %d processes, %d channels, %d IR instructions\n\n",
		s.Processes, s.Channels, s.Instructions)

	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64})
	user := &esplang.QueueWriter{}
	network := &esplang.CollectReader{}
	if err := m.BindWriter("userReqC", user); err != nil {
		log.Fatal(err)
	}
	if err := m.BindReader("SM2C", network); err != nil {
		log.Fatal(err)
	}

	// The external writer builds ESP values through the machine heap, the
	// Go analogue of the generated UserReqUpdate/UserReqSend C functions.
	userT := prog.IR.ChannelByName("userReqC").Elem
	sendT, updateT := userT.Fields[0].Type, userT.Fields[1].Type

	update := func(vaddr, paddr int64) {
		user.Push(1, func(mm *esplang.Machine) esplang.Value {
			return mm.NewUnionV(userT, 1, mm.NewRecordV(updateT,
				esplang.IntVal(vaddr), esplang.IntVal(paddr)))
		})
	}
	send := func(dest, vaddr, size int64) {
		user.Push(0, func(mm *esplang.Machine) esplang.Value {
			return mm.NewUnionV(userT, 0, mm.NewRecordV(sendT,
				esplang.IntVal(dest), esplang.IntVal(vaddr), esplang.IntVal(size)))
		})
	}

	// Map page 3 -> frame 777 and page 5 -> frame 1234, then send from
	// both pages (plus one from an unmapped page).
	update(3, 777)
	update(5, 1234)
	send(9, 3, 4)
	send(2, 5, 2)
	send(7, 12, 3)

	m.Run()
	if f := m.Fault(); f != nil {
		log.Fatal(f)
	}

	for i, msg := range network.Values {
		dest := msg.Field(0).Int()
		data := msg.Field(1)
		fmt.Printf("packet %d: dest=%d payload=[", i+1, dest)
		for j := range data.Obj.Elems {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Print(data.Field(j).Int())
		}
		fmt.Println("]")
	}

	fmt.Printf("\nheap after the run: %d live objects (the page table), %d allocated, %d freed\n",
		m.Heap().Live(), m.Heap().Allocs(), m.Heap().Frees())
	fmt.Printf("simulated cost: %d cycles, %d rendezvous, %d context switches\n",
		m.Cycles, m.Stats.Rendezvous, m.Stats.CtxSwitches)
}
