// Vmmc runs the paper's case study end to end: two simulated machines
// with Myrinet NICs, one pair running the ESP firmware on the ESP virtual
// machine and one pair running the hand-written event-driven baseline,
// exchanging real messages through simulated DMA engines and a wire.
package main

import (
	"fmt"
	"log"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/vmmc"
)

func main() {
	cfg := nic.DefaultConfig()

	fmt.Println("== the firmware itself ==")
	prog, err := esplang.Compile(vmmc.ESPSource(cfg), esplang.CompileOptions{Name: "vmmcESP"})
	if err != nil {
		log.Fatal(err)
	}
	s := prog.Stats()
	fmt.Printf("ESP VMMC firmware: %d lines (%d declarations + %d process code),\n",
		s.SourceLines, s.DeclLines, s.ProcessLines)
	fmt.Printf("%d processes, %d channels — the paper's §4.6 shape.\n\n", s.Processes, s.Channels)

	fmt.Println("== one message, step by step ==")
	c, err := vmmc.NewCluster(vmmc.ESP, cfg)
	if err != nil {
		log.Fatal(err)
	}
	c.Hosts[0].Update(0x1000, 0x8000) // map the source page
	c.Hosts[0].Send(0x1000, 0x2000, 6000)
	c.Run(0)
	nt := c.Hosts[1].Recvd[0]
	fmt.Printf("machine 0 sent 6000 B (2 pages) -> machine 1 notified at t=%.1f us\n",
		float64(nt.Time)/1000)
	fmt.Printf("sender NIC: %d data packets, %d host-DMA transfers, %d CPU cycles\n",
		c.NICs[0].PktsSent, c.NICs[0].HostDMA.Transfers, c.NICs[0].CPUCycles)
	fmt.Printf("receiver NIC: %d packets in, %d host-DMA transfers, %d CPU cycles\n\n",
		c.NICs[1].PktsRecv, c.NICs[1].HostDMA.Transfers, c.NICs[1].CPUCycles)

	fmt.Println("== the three firmware flavors on the same hardware ==")
	fmt.Printf("%-22s %14s %14s %14s\n", "", "4B latency", "1KB one-way", "4KB bidir")
	for _, fl := range []vmmc.Flavor{vmmc.ESP, vmmc.Orig, vmmc.OrigNoFastPaths} {
		lat, err := vmmc.PingPong(fl, cfg, 4, 20)
		if err != nil {
			log.Fatal(err)
		}
		bw, err := vmmc.OneWay(fl, cfg, 1024, 40)
		if err != nil {
			log.Fatal(err)
		}
		bd, err := vmmc.Bidirectional(fl, cfg, 4096, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %11.1f us %9.1f MB/s %9.1f MB/s\n", fl, lat/1000, bw, bd)
	}
	fmt.Println("\n(Figure 5's shape: ESP slowest, fast paths help the baseline most")
	fmt.Println(" on small messages, and the gaps close as DMA time dominates.)")
}
