// Memsafety replays §5.2/§5.3: memory safety is a local property of each
// ESP process, so the verifier can check it exhaustively — and it finds
// every seeded allocation bug (use-after-free, double free, leak via
// objectId exhaustion) with a counterexample trace.
package main

import (
	"fmt"
	"log"

	esplang "esplang"
	"esplang/internal/nic"
	"esplang/internal/vmmc"
)

func main() {
	fmt.Println("§5.2/§5.3: exhaustive memory-safety checking")
	fmt.Println()

	// The clean data path verifies.
	res, err := vmmc.VerifyMemSafety(vmmc.BugNone, esplang.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean data path:       %s\n", res)
	if res.Violation != nil {
		log.Fatal("the clean model must verify")
	}

	// Every seeded bug is found (the paper: "in every case").
	for _, bug := range []vmmc.MemBug{vmmc.BugLeak, vmmc.BugUseAfterFree, vmmc.BugDoubleFree} {
		res, err := vmmc.VerifyMemSafety(bug, esplang.VerifyOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeded %-14s  %s\n", bug.String()+":", res)
		if res.Violation == nil {
			log.Fatalf("seeded %s not found", bug)
		}
		if res.Violation.Fault != nil {
			fmt.Printf("  -> %v\n", res.Violation.Fault)
		}
	}

	// The same checks also run against the whole firmware model: the
	// live-object bound is the fixed-size objectId table of §5.2, so a
	// leak anywhere eventually exhausts it during the search.
	fmt.Println()
	fw, err := vmmc.VerifyFirmware(nic.DefaultConfig(), 2, esplang.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole firmware model:  %s\n", fw)
}
