// Retransmission replays the §5.3 development story: the sliding-window
// retransmission protocol is developed against the model checker first —
// simulation mode for quick debugging, exhaustive mode for certainty —
// and the seeded bug a testbed would take days to hit is found in
// milliseconds as a counterexample trace.
package main

import (
	"fmt"
	"log"

	esplang "esplang"
	"esplang/internal/vmmc"
)

func main() {
	fmt.Println("§5.3: developing the retransmission protocol under the verifier")
	fmt.Println()

	// Step 1: a quick random simulation of the correct protocol — the
	// mode the paper used while writing the code.
	prog, err := esplang.Compile(vmmc.RetransModel(2, 3, false), esplang.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := prog.Verify(esplang.VerifyOptions{
		Mode: esplang.Simulation, Seed: 7, SimRuns: 50, EndRecvOK: true})
	fmt.Printf("1. simulation mode (50 random walks):   %s\n", res)

	// Step 2: exhaustive search over every corruption/interleaving
	// pattern.
	res = prog.Verify(esplang.VerifyOptions{EndRecvOK: true})
	fmt.Printf("2. exhaustive search:                   %s\n", res)
	if res.Violation != nil {
		log.Fatal("the correct protocol must verify")
	}

	// Step 3: seed the bug — the receiver forgets the in-order check, so
	// a go-back-N retransmission can be accepted out of order.
	buggy, err := esplang.Compile(vmmc.RetransModel(2, 3, true), esplang.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res = buggy.Verify(esplang.VerifyOptions{EndRecvOK: true})
	fmt.Printf("3. seeded bug, exhaustive search:       %s\n", res)
	if res.Violation == nil {
		log.Fatal("the seeded bug must be found")
	}
	fmt.Println("\n   counterexample (the interleaving a testbed rarely produces):")
	for i, step := range res.Violation.Trace {
		fmt.Printf("   %2d. %s\n", i+1, step.Desc)
	}

	// Step 4: once verified, the same processes run unchanged — here
	// under the VM with a scripted wire, as they would on the card.
	fmt.Println("\n4. the verified protocol runs unchanged on the VM inside the")
	fmt.Println("   full firmware (see the vmmc package); development needed no")
	fmt.Println("   painstaking on-card debugging (paper: 2 days instead of 10).")
}
