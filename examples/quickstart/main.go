// Quickstart: compile the paper's add5 process (§4.3) and a FIFO queue
// (§4.2), run them on the ESP virtual machine, and emit both compiler
// targets — the C firmware file and the SPIN specification (Figure 4).
package main

import (
	"fmt"
	"log"
	"strings"

	esplang "esplang"
)

// add5 is the two-state state machine from §4.3, wired to the outside
// world through external channels (§4.5).
const add5Src = `
channel chan1: int external writer
channel chan2: int external reader
interface feed( out chan1) { Put( $v) }

process add5 {
    while (true) {
        in( chan1, $i);
        out( chan2, i+5);
    }
}
`

// fifo is the bounded buffer from §4.2: an alt with guarded alternatives.
const fifoSrc = `
const CAP = 4;
channel chan1: int external writer
channel chan2: int external reader
interface feed( out chan1) { Put( $v) }

process fifo {
    $q: #array of int = #{ CAP -> 0};
    $hd = 0;
    $tl = 0;
    while (true) {
        alt {
            case( !(tl - hd == CAP), in( chan1, $v)) { q[tl % CAP] = v; tl = tl + 1; }
            case( !(tl == hd), out( chan2, q[hd % CAP])) { hd = hd + 1; }
        }
    }
}
`

func runPipeline(name, src string, inputs []int64) {
	prog, err := esplang.Compile(src, esplang.CompileOptions{Name: name})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64})

	in := &esplang.QueueWriter{}
	out := &esplang.CollectReader{}
	for _, v := range inputs {
		v := v
		in.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
	}
	if err := m.BindWriter("chan1", in); err != nil {
		log.Fatal(err)
	}
	if err := m.BindReader("chan2", out); err != nil {
		log.Fatal(err)
	}
	m.Run()
	if f := m.Fault(); f != nil {
		log.Fatalf("%s: %v", name, f)
	}

	var outs []string
	for _, s := range out.Values {
		outs = append(outs, fmt.Sprint(s.Int()))
	}
	fmt.Printf("%-6s %v -> [%s]   (%d simulated cycles, %d rendezvous)\n",
		name, inputs, strings.Join(outs, " "), m.Cycles, m.Stats.Rendezvous)
}

func main() {
	fmt.Println("== running ESP programs on the virtual machine ==")
	runPipeline("add5", add5Src, []int64{1, 10, 37})
	runPipeline("fifo", fifoSrc, []int64{3, 1, 4, 1, 5, 9, 2, 6})

	fmt.Println("\n== the two compiler targets (Figure 4) ==")
	prog := esplang.MustCompile(add5Src, esplang.CompileOptions{Name: "add5"})

	c := prog.C(esplang.COptions{})
	fmt.Printf("C target: %d lines; firmware entry point and §4.5 interface:\n", strings.Count(c, "\n"))
	for _, line := range strings.Split(c, "\n") {
		if strings.Contains(line, "extern") || strings.Contains(line, "void esp_run") {
			fmt.Println("   ", strings.TrimSpace(line))
		}
	}

	pml := prog.Promela(esplang.PromelaOptions{})
	fmt.Printf("\nSPIN target: %d lines; processes and channels:\n", strings.Count(pml, "\n"))
	for _, line := range strings.Split(pml, "\n") {
		if strings.HasPrefix(line, "proctype") || strings.HasPrefix(line, "chan ") {
			fmt.Println("   ", line)
		}
	}

	fmt.Println("\n== compiled state machine (the IR the VM executes) ==")
	d := prog.Disasm()
	fmt.Println(d[:min(len(d), 600)])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
