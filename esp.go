// Package esplang is a complete implementation of ESP — the language for
// programmable devices from "ESP: A Language for Programmable Devices"
// (Kumar, Mandelbaum, Yu, Li; PLDI 2001).
//
// ESP programs are compiled once and then used three ways, mirroring
// Figure 4 of the paper:
//
//   - Program.C emits the C translation (pgm.C) that, combined with the
//     programmer's helper C code, becomes device firmware;
//   - Program.Promela emits the SPIN specification (pgm.SPIN) to combine
//     with hand-written test drivers;
//   - Program.Machine runs the program directly on the bundled virtual
//     machine (the execution substrate this repository's firmware
//     simulations use), and Program.Verify explores its state space with
//     the bundled explicit-state model checker.
//
// Quick start:
//
//	prog, err := esplang.Compile(src, esplang.CompileOptions{})
//	m := prog.Machine(esplang.MachineConfig{})
//	m.BindWriter("inC", inputQueue)
//	m.BindReader("outC", collector)
//	m.Run()
package esplang

import (
	"fmt"
	"os"
	"strings"

	"esplang/internal/analysis"
	"esplang/internal/ast"
	"esplang/internal/cbackend"
	"esplang/internal/check"
	"esplang/internal/compile"
	"esplang/internal/ir"
	"esplang/internal/mc"
	"esplang/internal/opt"
	"esplang/internal/parser"
	"esplang/internal/promela"
	"esplang/internal/vm"
)

// Re-exported runtime types: the public names downstream code uses.
type (
	// Machine executes a compiled program (see internal/vm).
	Machine = vm.Machine
	// MachineConfig configures a Machine.
	MachineConfig = vm.Config
	// Value is a runtime value.
	Value = vm.Value
	// Fault is a runtime fault (assertion, memory safety, ...).
	Fault = vm.Fault
	// ExternalWriter is the environment side of an external-writer channel.
	ExternalWriter = vm.ExternalWriter
	// ExternalReader is the environment side of an external-reader channel.
	ExternalReader = vm.ExternalReader
	// QueueWriter is a FIFO-backed ExternalWriter.
	QueueWriter = vm.QueueWriter
	// CollectReader is an ExternalReader that snapshots received values.
	CollectReader = vm.CollectReader
	// Snapshot is a Go-native copy of a machine value.
	Snapshot = vm.Snapshot
	// Engine selects the VM's interpreter loop (MachineConfig.Engine,
	// VerifyOptions.Engine): the fused hot-path engine (default), the
	// process-fused engine (adds static rendezvous scheduling and direct
	// transfers), the compiled engine (runs ahead-of-time generated Go
	// step functions, see internal/gobackend), or the baseline
	// one-instruction-at-a-time loop, kept as a differential-testing
	// oracle. All four charge the identical cycle cost model.
	Engine = vm.Engine
	// ProcInst is one process instance inside a Machine. Compiled-engine
	// step functions receive it alongside the machine.
	ProcInst = vm.ProcInst
	// ProcStatus is a process's scheduling state; generated fused code
	// compares it against the re-exported constants below.
	ProcStatus = vm.ProcStatus
	// CompiledProc is one generated native step function of the compiled
	// engine, installed with Machine.InstallCompiled.
	CompiledProc = vm.CompiledProc
	// MachineStats is the machine's event-statistics counters
	// (Machine.Stats).
	MachineStats = vm.Stats
	// RunResult classifies how Machine.Run ended.
	RunResult = vm.RunResult

	// VerifyOptions configures model checking (see internal/mc).
	VerifyOptions = mc.Options
	// VerifyResult reports a model-checking run.
	VerifyResult = mc.Result
	// PORStats reports partial-order-reduction counters
	// (VerifyResult.POR, non-nil when Reduction is AmpleSets).
	PORStats = mc.PORStats
	// Violation is a property failure with its counterexample trace.
	Violation = mc.Violation
	// ProgressInfo is one periodic model-checking progress sample
	// (VerifyOptions.Progress receives them).
	ProgressInfo = mc.ProgressInfo

	// COptions configures C generation.
	COptions = cbackend.Options
	// PromelaOptions configures Promela generation.
	PromelaOptions = promela.Options
	// OptOptions selects optimizer passes.
	OptOptions = opt.Options
	// OptimizerStats reports per-pass optimizer statistics.
	OptimizerStats = opt.Stats
)

// VerifyIR checks the structural invariants of a compiled program's IR:
// balanced stack depths, in-range jump targets, and valid channel, port,
// pattern, and local references.
var VerifyIR = ir.Verify

// Verification modes (re-exported).
const (
	Exhaustive = mc.Exhaustive
	BitState   = mc.BitState
	Simulation = mc.Simulation
)

// State-space reductions (re-exported; VerifyOptions.Reduction).
const (
	NoReduction = mc.NoReduction
	AmpleSets   = mc.AmpleSets
)

// Execution engines (re-exported).
const (
	EngineFused     = vm.EngineFused
	EngineBaseline  = vm.EngineBaseline
	EngineProcFused = vm.EngineProcFused
	EngineCompiled  = vm.EngineCompiled
)

// Run results (re-exported).
const (
	RunHalted = vm.RunHalted
	RunIdle   = vm.RunIdle
	RunFault  = vm.RunFault
)

// ParseEngine parses an engine name ("baseline", "fused", "procfused",
// or "compiled"), for CLI -engine flags.
var ParseEngine = vm.ParseEngine

// Process scheduling states (ProcInst.Status), re-exported for the
// generated fused fast path's inline rendezvous checks.
const (
	PReady       = vm.PReady
	PBlockedSend = vm.PBlockedSend
	PBlockedRecv = vm.PBlockedRecv
	PBlockedAlt  = vm.PBlockedAlt
	PHalted      = vm.PHalted
)

// CGSpill exposes a process's architectural operand stack to generated
// compiled-engine code (see internal/gobackend): it resizes the stack to
// the given depth so the generated function can spill its Go-local slots
// before a blocking point or stack-consuming operation.
var CGSpill = vm.CGSpill

// OptAll returns the full optimizer pipeline — the default when
// CompileOptions.Passes is zero. CLIs start from it to switch single
// passes off (e.g. -no-fuse clears FuseProcs).
var OptAll = opt.All

// Value constructors (re-exported).
var (
	IntVal  = vm.IntVal
	BoolVal = vm.BoolVal
)

// CompileOptions controls compilation.
type CompileOptions struct {
	// Name labels the program in diagnostics and generated files.
	Name string
	// File is the source path; it threads through to VM faults,
	// model-checker traces, C #line directives, and Promela comments so
	// every downstream consumer can report ESP file:line locations.
	// CompileFile sets it automatically.
	File string
	// NoOptimize disables the §6.1 IR optimization passes.
	NoOptimize bool
	// Passes overrides the optimizer pipeline when non-zero.
	Passes OptOptions
	// VerifyIR checks structural IR invariants (ir.Verify) after
	// compilation and again after every optimizer pass.
	VerifyIR bool
	// VetDisable suppresses espvet checks by ID ("ESPV002") or name
	// ("leak") when computing Program.Findings.
	VetDisable map[string]bool
}

// Program is a compiled ESP program.
type Program struct {
	Name   string
	File   string
	Source string

	AST  *ast.Program
	Info *check.Info
	IR   *ir.Program
	// OptStats reports the optimizer driver's per-pass statistics (nil
	// when optimization was disabled).
	OptStats *opt.Stats
	// Findings are the espvet static-analysis reports, computed over the
	// pre-optimization IR during Compile (the optimizer's dead-code and
	// dead-store elimination would hide exactly the defects the analyses
	// look for). Findings never fail compilation; espc -vet-err and
	// cmd/espvet turn them into build failures.
	Findings []*Finding
}

// Compile parses, type-checks, lowers, and optimizes an ESP program.
func Compile(src string, opts CompileOptions) (*Program, error) {
	tree, err := parser.Parse([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := check.Check(tree)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	irProg := compile.Program(tree, info)
	irProg.Name = opts.Name
	irProg.Source = src
	irProg.File = opts.File
	if opts.VerifyIR {
		if err := ir.Verify(irProg); err != nil {
			return nil, fmt.Errorf("compile: %w", err)
		}
	}
	prog := &Program{Name: opts.Name, File: opts.File, Source: src, AST: tree, Info: info, IR: irProg}
	// espvet runs on every compile, before the optimizer touches the IR.
	// The analyses assume ir.Verify's structural invariants, so when
	// verification was not already requested it runs quietly here first.
	if opts.VerifyIR || ir.Verify(irProg) == nil {
		prog.Findings = analysis.Analyze(irProg, analysis.Options{Disable: opts.VetDisable})
	}
	if !opts.NoOptimize {
		passes := opts.Passes
		if passes == (OptOptions{}) {
			passes = opt.All()
		}
		passes.Verify = passes.Verify || opts.VerifyIR
		stats, err := opt.Run(irProg, passes)
		if err != nil {
			return nil, err
		}
		prog.OptStats = stats
	}
	return prog, nil
}

// CompileFile reads and compiles an ESP source file.
func CompileFile(path string, opts CompileOptions) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = path
	}
	if opts.File == "" {
		opts.File = path
	}
	return Compile(string(src), opts)
}

// MustCompile compiles or panics; for embedded programs known to be valid.
func MustCompile(src string, opts CompileOptions) *Program {
	p, err := Compile(src, opts)
	if err != nil {
		panic(fmt.Sprintf("esplang: MustCompile: %v", err))
	}
	return p
}

// Machine creates a virtual machine running the program.
func (p *Program) Machine(cfg MachineConfig) *Machine {
	return vm.New(p.IR, cfg)
}

// Verify model-checks the program (the programmer's test driver processes
// must be part of the program, like the paper's test.SPIN files).
func (p *Program) Verify(opts VerifyOptions) *VerifyResult {
	return mc.Check(p.IR, opts)
}

// VerifyProgress checks for starvation: a reachable cycle containing no
// communication on any of the named progress channels (SPIN's
// non-progress cycle detection, the role LTL liveness plays in §5.1).
func (p *Program) VerifyProgress(progressChannels []string, opts VerifyOptions) *VerifyResult {
	return mc.CheckProgress(p.IR, progressChannels, opts)
}

// C renders the C translation of the program (pgm.C in Figure 4).
func (p *Program) C(opts COptions) string {
	return cbackend.Generate(p.IR, opts)
}

// Promela renders the SPIN specification (pgm.SPIN in Figure 4). When
// the program was compiled from a file, emitted statements carry
// source-location comments unless opts.File overrides the path.
func (p *Program) Promela(opts PromelaOptions) string {
	if opts.File == "" {
		opts.File = p.File
	}
	return promela.Generate(p.AST, p.Info, opts)
}

// Disasm renders the compiled IR of every process.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, proc := range p.IR.Procs {
		b.WriteString(ir.Disasm(proc))
		b.WriteByte('\n')
	}
	return b.String()
}

// DisasmFused renders the fused-engine translation of every process —
// the superinstruction code the default engine actually executes. When
// the optimizer has not cached a translation (e.g. -O0), processes are
// fused on the fly, exactly as vm.New would.
func (p *Program) DisasmFused() string {
	fused := p.IR.Fused
	if fused == nil {
		fused = ir.FuseProgram(p.IR)
	}
	var b strings.Builder
	for i, proc := range p.IR.Procs {
		b.WriteString(ir.DisasmFused(proc, fused[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpSchedule renders the static rendezvous schedule the process-fused
// engine executes: which channels were fused into direct transfers,
// which stay on dynamic rendezvous and why, and the static interleave
// order of the fusion groups. When the optimizer has not cached a
// schedule (e.g. -O0 or -no-fuse), it is computed on the fly, exactly
// as the fuseprocs pass would.
func (p *Program) DumpSchedule() string {
	sched := p.IR.Schedule
	if sched == nil {
		sched = analysis.ComputeSchedule(p.IR)
	}
	return ir.FormatSchedule(p.IR, sched)
}

// DumpIndependence renders the transition-independence table the
// partial-order reduction and the ESPV013/ESPV014 checks consume: which
// processes touch each channel, per-process heap-cleanliness verdicts,
// ref-flow regions, and the resulting independent process pairs. When
// the optimizer has not cached the table (e.g. -O0), it is computed on
// the fly, exactly as the optimizer's final pass would.
func (p *Program) DumpIndependence() string {
	ind := p.IR.Indep
	if ind == nil {
		ind = analysis.ComputeIndependence(p.IR)
	}
	return ir.FormatIndependence(p.IR, ind)
}

// Stats summarizes the program.
type Stats struct {
	Processes    int
	Channels     int
	Types        int
	Instructions int
	SourceLines  int
	DeclLines    int // lines of type/channel/const/interface declarations
	ProcessLines int // lines inside process bodies
}

// Stats computes program statistics (used by the paper's line-count
// comparison, §4.6).
func (p *Program) Stats() Stats {
	s := Stats{
		Processes: len(p.IR.Procs),
		Channels:  len(p.IR.Channels),
		Types:     len(p.Info.Universe.All()),
	}
	for _, proc := range p.IR.Procs {
		s.Instructions += len(proc.Code)
	}
	s.SourceLines, s.DeclLines, s.ProcessLines = countLines(p.Source)
	return s
}

// countLines counts non-blank, non-comment source lines, split into
// declaration lines and process-body lines (the paper reports "200 lines
// of declarations + 300 lines of process code", §4.6).
func countLines(src string) (total, decl, proc int) {
	inProc := false
	depth := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		total++
		if !inProc && strings.HasPrefix(t, "process ") {
			inProc = true
			depth = 0
		}
		if inProc {
			proc++
			depth += strings.Count(t, "{") - strings.Count(t, "}")
			if depth <= 0 && strings.Contains(t, "}") {
				inProc = false
			}
		} else {
			decl++
		}
	}
	return total, decl, proc
}
