package esplang_test

import (
	"strings"
	"testing"

	esplang "esplang"
)

const quickSrc = `
channel inC: int external writer
channel outC: int external reader
interface inI( out inC) { Put( $v) }
process add5 {
    while (true) {
        in( inC, $i);
        out( outC, i+5);
    }
}
`

func TestCompileAndRun(t *testing.T) {
	prog, err := esplang.Compile(quickSrc, esplang.CompileOptions{Name: "add5"})
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Machine(esplang.MachineConfig{})
	in := &esplang.QueueWriter{}
	out := &esplang.CollectReader{}
	if err := m.BindWriter("inC", in); err != nil {
		t.Fatal(err)
	}
	if err := m.BindReader("outC", out); err != nil {
		t.Fatal(err)
	}
	in.Push(0, func(_ *esplang.Machine) esplang.Value { return esplang.IntVal(37) })
	m.Run()
	if len(out.Values) != 1 || out.Values[0].Int() != 42 {
		t.Errorf("got %v, want [42]", out.Values)
	}
}

func TestCompileError(t *testing.T) {
	_, err := esplang.Compile("process p { x = 1; }", esplang.CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("err = %v, want undefined-variable error", err)
	}
	_, err = esplang.Compile("process p {", esplang.CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("err = %v, want parse error", err)
	}
}

func TestBothTargets(t *testing.T) {
	prog, err := esplang.Compile(quickSrc, esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := prog.C(esplang.COptions{})
	if !strings.Contains(c, "void esp_run(void)") {
		t.Error("C target missing esp_run")
	}
	pml := prog.Promela(esplang.PromelaOptions{})
	if !strings.Contains(pml, "proctype add5()") {
		t.Error("Promela target missing proctype")
	}
}

func TestVerifyThroughAPI(t *testing.T) {
	prog, err := esplang.Compile(`
channel c: int
process p { out( c, 41); }
process q { in( c, $v); assert( v == 42); }
`, esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Verify(esplang.VerifyOptions{})
	if res.Violation == nil {
		t.Error("verification missed the assertion violation")
	}
}

func TestDisasm(t *testing.T) {
	prog := esplang.MustCompile(quickSrc, esplang.CompileOptions{})
	d := prog.Disasm()
	if !strings.Contains(d, "process add5") || !strings.Contains(d, "recv chan=") {
		t.Errorf("disassembly incomplete:\n%s", d)
	}
}

func TestStats(t *testing.T) {
	prog := esplang.MustCompile(quickSrc, esplang.CompileOptions{})
	s := prog.Stats()
	if s.Processes != 1 || s.Channels != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.SourceLines == 0 || s.DeclLines == 0 || s.ProcessLines == 0 {
		t.Errorf("line counts missing: %+v", s)
	}
	if s.DeclLines+s.ProcessLines != s.SourceLines {
		t.Errorf("line split inconsistent: %d + %d != %d", s.DeclLines, s.ProcessLines, s.SourceLines)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on invalid source")
		}
	}()
	esplang.MustCompile("bogus", esplang.CompileOptions{})
}

func TestNoOptimize(t *testing.T) {
	src := `
channel outC: int external reader
process p { $x = 1 + 2; out( outC, x); }
`
	opt := esplang.MustCompile(src, esplang.CompileOptions{})
	raw := esplang.MustCompile(src, esplang.CompileOptions{NoOptimize: true})
	if opt.Stats().Instructions >= raw.Stats().Instructions {
		t.Errorf("optimization did not shrink code: %d vs %d",
			opt.Stats().Instructions, raw.Stats().Instructions)
	}
}

func TestVerifyProgressThroughAPI(t *testing.T) {
	prog, err := esplang.Compile(`
channel chat: int
channel back: int
channel work: int
process a { while (true) { out( chat, 1); in( back, $x); } }
process b { while (true) { in( chat, $y); out( back, y); } }
process w { while (true) { in( work, $v); } }
`, esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.VerifyProgress([]string{"work"}, esplang.VerifyOptions{})
	if res.Violation == nil {
		t.Error("starvation not found through the API")
	}
	res = prog.VerifyProgress([]string{"chat"}, esplang.VerifyOptions{})
	if res.Violation != nil {
		t.Errorf("false starvation: %v", res.Violation)
	}
}
