package esplang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/ast"
	"esplang/internal/parser"
)

// TestTestdataCompiles compiles every sample program and generates both
// targets — the sanity sweep a release would gate on.
func TestTestdataCompiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			prog, err := esplang.CompileFile(f, esplang.CompileOptions{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if c := prog.C(esplang.COptions{}); !strings.Contains(c, "esp_run") {
				t.Error("C target incomplete")
			}
			if p := prog.Promela(esplang.PromelaOptions{}); !strings.Contains(p, "init {") {
				t.Error("Promela target incomplete")
			}
			if prog.Stats().Processes == 0 {
				t.Error("no processes compiled")
			}
		})
	}
}

// TestTestdataFormatterStable: the canonical printer is a fixpoint on
// every sample.
func TestTestdataFormatterStable(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.esp")
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		once := ast.Print(tree)
		tree2, err := parser.Parse([]byte(once))
		if err != nil {
			t.Fatalf("%s: formatted output does not reparse: %v\n%s", f, err, once)
		}
		if twice := ast.Print(tree2); once != twice {
			t.Errorf("%s: printer not a fixpoint", f)
		}
	}
}

// TestPipelineVerifies: the closed sample passes the model checker.
func TestPipelineVerifies(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Verify(esplang.VerifyOptions{})
	if res.Violation != nil {
		t.Fatalf("pipeline violates: %v", res.Violation)
	}
}
