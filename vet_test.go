package esplang_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"esplang"
)

// vetDirective is the parsed //vet:mc header of a corpus program: the
// model checker's expected verdict plus the options needed to reach it.
type vetDirective struct {
	verdict    string // "pass", "deadlock", or "fault"
	faultSub   string // fault verdict: substring of the expected fault kind
	maxObjects int    // max-objects=N (0 = checker default)
	noEndRecv  bool   // no-end-recv: disable the firmware-at-rest convention
}

// parseVetDirective reads the //vet:mc line that every corpus program
// must start with.
func parseVetDirective(t *testing.T, path, src string) vetDirective {
	t.Helper()
	line, _, _ := strings.Cut(src, "\n")
	const prefix = "//vet:mc "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("%s: first line must be a %q directive, got %q", path, strings.TrimSpace(prefix), line)
	}
	var d vetDirective
	for _, f := range strings.Fields(strings.TrimPrefix(line, prefix)) {
		switch {
		case f == "pass" || f == "deadlock":
			d.verdict = f
		case strings.HasPrefix(f, "fault="):
			// Fault kinds are written dash-separated ("use-after-free")
			// and matched against the spaced FaultKind string.
			d.verdict = "fault"
			d.faultSub = strings.ReplaceAll(strings.TrimPrefix(f, "fault="), "-", " ")
		case strings.HasPrefix(f, "max-objects="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "max-objects="))
			if err != nil {
				t.Fatalf("%s: bad max-objects in %q: %v", path, line, err)
			}
			d.maxObjects = n
		case f == "no-end-recv":
			d.noEndRecv = true
		default:
			t.Fatalf("%s: unknown directive field %q in %q", path, f, line)
		}
	}
	if d.verdict == "" {
		t.Fatalf("%s: directive %q names no verdict (pass|deadlock|fault=...)", path, line)
	}
	return d
}

// TestVetCorpusDifferential is the espvet acceptance harness. Every
// program under testdata/vet/ carries a //vet:mc directive; the test
// cross-validates the static findings against the model checker:
//
//   - the findings (caret rendering and all) must match the program's
//     .vet golden file;
//   - clean_* programs must produce zero findings;
//   - a "deadlock" or "fault" verdict must be reproduced by the checker,
//     and the counterexample must confirm one of the static findings
//     (Program.ConfirmFinding) — no static true positive goes
//     dynamically unvalidated;
//   - a "pass" verdict must produce no violation, so any finding on a
//     pass program is by construction not a safety defect (dead code,
//     dead stores).
func TestVetCorpusDifferential(t *testing.T) {
	files, err := filepath.Glob("testdata/vet/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata/vet programs found: %v", err)
	}
	for _, path := range files {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".esp")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			d := parseVetDirective(t, path, string(src))

			prog, err := esplang.CompileFile(path, esplang.CompileOptions{Name: name})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}

			// 1. Findings match the golden transcript.
			var b strings.Builder
			for _, f := range prog.Findings {
				fmt.Fprintf(&b, "%s: %s\n", f.Proc, f)
			}
			b.WriteString("----\n")
			b.WriteString(prog.RenderFindings())
			checkGolden(t, strings.TrimSuffix(path, ".esp")+".vet", b.String())

			if strings.HasPrefix(name, "clean_") && len(prog.Findings) != 0 {
				t.Fatalf("clean program has findings:\n%s", prog.RenderFindings())
			}
			if d.verdict != "pass" && len(prog.Findings) == 0 {
				t.Fatalf("buggy program (%s) has no static findings", d.verdict)
			}

			// 2. The model checker reproduces the directive's verdict.
			opts := esplang.VerifyOptions{
				Mode:           esplang.Exhaustive,
				Workers:        1,
				EndRecvOK:      !d.noEndRecv,
				MaxLiveObjects: d.maxObjects,
			}
			res := prog.Verify(opts)
			switch d.verdict {
			case "pass":
				if res.Violation != nil {
					t.Fatalf("expected no violation, got: %v", res.Violation)
				}
			case "deadlock":
				if res.Violation == nil || !res.Violation.Deadlock {
					t.Fatalf("expected deadlock, got: %+v", res.Violation)
				}
			case "fault":
				if res.Violation == nil || res.Violation.Fault == nil {
					t.Fatalf("expected fault %q, got: %+v", d.faultSub, res.Violation)
				}
				if got := res.Violation.Fault.Kind.String(); !strings.Contains(got, d.faultSub) {
					t.Fatalf("expected fault kind containing %q, got %q", d.faultSub, got)
				}
			}

			// 3. The counterexample dynamically confirms a static finding.
			if d.verdict != "pass" {
				f := prog.ConfirmFinding(res.Violation)
				if f == nil {
					t.Fatalf("model-checker violation confirms no static finding\nviolation: %+v\nfindings:\n%s",
						res.Violation, prog.RenderFindings())
				}
				t.Logf("confirmed: %s", f)
			}
		})
	}
}

// TestVetFindsSeededVmmcBugs checks espvet against the §5.3 seeded
// memory bugs the model-checker suite already proves are dynamically
// reachable: the static analyses must flag every one of them with the
// matching check, and the bug-free model must stay clean.
func TestVetFindsSeededVmmcBugs(t *testing.T) {
	// The vmmc models live in internal/vmmc; regenerating them here via
	// the public API keeps this package's dependencies one-directional.
	for _, tc := range []struct {
		name   string
		bug    string // substring that must appear in some finding
		id     string // check ID that must be present ("" = must be clean)
		source string
	}{
		{"none", "", "", vmmcMemSafetySource("assert( data[0] >= 0);", "unlink( data);")},
		{"leak", "rebind", "ESPV002", vmmcMemSafetySource("assert( data[0] >= 0);", "// missing unlink")},
		{"use-after-free", "after its reference was released", "ESPV003", vmmcMemSafetySource("unlink( data); assert( data[0] >= 0);", "")},
		{"double-free", "released twice", "ESPV004", vmmcMemSafetySource("assert( data[0] >= 0);", "unlink( data); unlink( data);")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := esplang.Compile(tc.source, esplang.CompileOptions{Name: "memsafety-" + tc.name})
			if err != nil {
				t.Fatal(err)
			}
			if tc.id == "" {
				if len(prog.Findings) != 0 {
					t.Fatalf("bug-free model has findings:\n%s", prog.RenderFindings())
				}
				return
			}
			found := false
			for _, f := range prog.Findings {
				if f.Check.ID == tc.id && strings.Contains(f.Msg, tc.bug) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s finding containing %q; got:\n%s", tc.id, tc.bug, prog.RenderFindings())
			}
		})
	}
}

// vetShippedSources lists every ESP program the repository ships; they
// must all come out of espvet clean.
func vetShippedSources(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped programs found: %v", err)
	}
	return files
}

// TestShippedProgramsVetClean: the sample programs must produce zero
// findings — the analyses' false-positive guard.
func TestShippedProgramsVetClean(t *testing.T) {
	for _, path := range vetShippedSources(t) {
		prog, err := esplang.CompileFile(path, esplang.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(prog.Findings) != 0 {
			t.Errorf("%s: expected no findings, got:\n%s", path, prog.RenderFindings())
		}
	}
}

// vetDisableSmoke: -disable suppression by ID and by name.
func TestVetDisable(t *testing.T) {
	src, err := os.ReadFile("testdata/vet/double_free.esp")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ESPV004", "double-free"} {
		prog, err := esplang.Compile(string(src), esplang.CompileOptions{
			Name:       "double_free",
			VetDisable: map[string]bool{key: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Findings {
			if f.Check.ID == "ESPV004" {
				t.Errorf("disable %q left finding %s", key, f)
			}
		}
	}
}

// vmmcMemSafetySource mirrors internal/vmmc's MemSafetyModel template so
// the root tests can exercise the same shapes without importing an
// internal package from the outside.
func vmmcMemSafetySource(use, release string) string {
	return fmt.Sprintf(`
type dataT = array of int
type msgT = record of { dest: int, data: dataT }

const MSGS = 5;

channel dmaC: msgT
channel fwdC: msgT

process producer {
    $n = 0;
    while (n < MSGS) {
        $d: dataT = { 2 -> n};
        out( dmaC, { n, d});
        unlink( d);
        n = n + 1;
    }
}

process sm1like {
    while (true) {
        in( dmaC, { $dest, $data});
        out( fwdC, { dest, data});
        unlink( data);
    }
}

process consumer {
    while (true) {
        in( fwdC, { $dest, $data});
        %s
        %s
    }
}
`, use, release)
}
