package esplang

import (
	"fmt"
	"strings"

	"esplang/internal/analysis"
	"esplang/internal/diag"
	"esplang/internal/mc"
	"esplang/internal/vm"
)

// Re-exported espvet types.
type (
	// Finding is one espvet static-analysis report (see internal/analysis).
	Finding = analysis.Finding
	// VetCheck identifies one espvet check (ID, name, one-line doc).
	VetCheck = analysis.Check
)

// VetChecks lists every espvet check in ID order.
var VetChecks = analysis.Checks

// RenderFinding formats a finding as a caret-marked warning excerpt,
// including its secondary spans ("allocated here", "released here").
func (p *Program) RenderFinding(f *Finding) string {
	return diag.Render(f.Diagnostic(), p.File, p.Source)
}

// RenderFindings renders every finding, separated by blank lines, with a
// trailing summary count. Returns "" when the program is clean.
func (p *Program) RenderFindings() string {
	if len(p.Findings) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range p.Findings {
		b.WriteString(p.RenderFinding(f))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d finding(s)\n", len(p.Findings))
	return b.String()
}

// ConfirmFinding matches a model-checker violation against the
// program's static findings: the finding the counterexample dynamically
// confirms, or nil when the violation is news to the static analyses.
//
// A fault confirms the matching memory-safety check — use-after-free
// (ESPV003), double-free (ESPV004), or object-table exhaustion, the
// checker's leak signal (ESPV002) — preferring a finding in the
// faulting process. A deadlock confirms a channel-protocol finding
// (ESPV010/011/012) or an uninitialized pattern read (ESPV001), whose
// never-matching receive strands its sender.
func (p *Program) ConfirmFinding(v *mc.Violation) *Finding {
	if v == nil {
		return nil
	}
	if v.Fault != nil {
		var want analysis.Check
		switch v.Fault.Kind {
		case vm.FaultUseAfterFree:
			want = analysis.CheckUseAfterFree
		case vm.FaultDoubleFree:
			want = analysis.CheckDoubleFree
		case vm.FaultOutOfObjects:
			want = analysis.CheckLeak
		default:
			return nil
		}
		// Prefer the faulting process; exhaustion can fault in whichever
		// process allocates one past the bound, so fall back to any
		// process's finding of the right kind.
		var fallback *Finding
		for _, f := range p.Findings {
			if f.Check != want {
				continue
			}
			if f.Proc == v.Fault.Proc {
				return f
			}
			if fallback == nil {
				fallback = f
			}
		}
		return fallback
	}
	if v.Deadlock {
		for _, want := range []analysis.Check{
			analysis.CheckOrphanChan, analysis.CheckSelfRendezvous,
			analysis.CheckDeadAltArm, analysis.CheckUninit,
		} {
			for _, f := range p.Findings {
				if f.Check == want {
					return f
				}
			}
		}
	}
	return nil
}
