package esplang_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	esplang "esplang"
	"esplang/internal/ir"
	"esplang/internal/vmmc"
)

// TestVerifiedPipelineAllTestdata runs the full optimizer pipeline with
// ir.Verify enabled after every pass over every sample program. A pass
// that breaks a structural invariant fails the compile with the pass
// named in the error.
func TestVerifiedPipelineAllTestdata(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			prog, err := esplang.CompileFile(f, esplang.CompileOptions{VerifyIR: true})
			if err != nil {
				t.Fatalf("verified compile: %v", err)
			}
			if prog.OptStats == nil || prog.OptStats.Rounds == 0 {
				t.Fatalf("optimizer did not run (stats: %+v)", prog.OptStats)
			}
			// The result must independently re-verify.
			if err := esplang.VerifyIR(prog.IR); err != nil {
				t.Fatalf("optimized program fails verification: %v", err)
			}
		})
	}
}

// feedInputs queues a deterministic message mix on every external writer
// channel of prog, and binds a collector to every external reader.
// The same inputs are used for the optimized and unoptimized runs.
func feedInputs(t *testing.T, prog *esplang.Program, m *esplang.Machine) map[string]*esplang.CollectReader {
	t.Helper()
	readers := map[string]*esplang.CollectReader{}
	for _, ch := range prog.IR.Channels {
		switch ch.Ext {
		case ir.ExtReader:
			r := &esplang.CollectReader{}
			if err := m.BindReader(ch.Name, r); err != nil {
				t.Fatal(err)
			}
			readers[ch.Name] = r
		case ir.ExtWriter:
			w := &esplang.QueueWriter{}
			if err := m.BindWriter(ch.Name, w); err != nil {
				t.Fatal(err)
			}
			switch ch.Name {
			case "inC": // add5.esp / fifo.esp: interface feed, Put($v)
				for _, v := range []int64{1, 7, 42, -3, 100, 5} {
					v := v
					w.Push(0, func(*esplang.Machine) esplang.Value { return esplang.IntVal(v) })
				}
			case "userReqC": // appendixb.esp: Send / Update union cases
				userT := ch.Elem
				sendT, updateT := userT.Fields[0].Type, userT.Fields[1].Type
				update := func(vaddr, paddr int64) {
					w.Push(1, func(mm *esplang.Machine) esplang.Value {
						return mm.NewUnionV(userT, 1, mm.NewRecordV(updateT,
							esplang.IntVal(vaddr), esplang.IntVal(paddr)))
					})
				}
				send := func(dest, vaddr, size int64) {
					w.Push(0, func(mm *esplang.Machine) esplang.Value {
						return mm.NewUnionV(userT, 0, mm.NewRecordV(sendT,
							esplang.IntVal(dest), esplang.IntVal(vaddr), esplang.IntVal(size)))
					})
				}
				update(3, 777)
				update(5, 1234)
				send(9, 3, 4)
				send(2, 5, 2)
				send(7, 12, 3)
			default:
				t.Fatalf("no input script for external writer %q", ch.Name)
			}
		}
	}
	return readers
}

func renderSnap(s esplang.Snapshot) string {
	if s.Obj == nil {
		return fmt.Sprintf("%d", s.Scalar)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "obj(tag=%d){", s.Obj.Tag)
	for i, e := range s.Obj.Elems {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(renderSnap(e))
	}
	b.WriteString("}")
	return b.String()
}

// runOnce compiles path with or without the optimizer, runs it on the VM
// with the canonical inputs, and renders everything observable: fault
// state and per-channel output values.
func runOnce(t *testing.T, path string, noOpt bool) string {
	t.Helper()
	prog, err := esplang.CompileFile(path, esplang.CompileOptions{NoOptimize: noOpt, VerifyIR: true})
	if err != nil {
		t.Fatalf("compile (NoOptimize=%v): %v", noOpt, err)
	}
	m := prog.Machine(esplang.MachineConfig{MaxLiveObjects: 64})
	readers := feedInputs(t, prog, m)
	m.Run()

	var b strings.Builder
	if f := m.Fault(); f != nil {
		fmt.Fprintf(&b, "fault: %s\n", f.Msg)
	} else {
		b.WriteString("fault: none\n")
	}
	names := make([]string, 0, len(readers))
	for name := range readers {
		names = append(names, name)
	}
	// prog.IR.Channels is in declaration order; keep that order stable.
	for _, ch := range prog.IR.Channels {
		for _, name := range names {
			if name != ch.Name {
				continue
			}
			fmt.Fprintf(&b, "%s:", name)
			for _, v := range readers[name].Values {
				b.WriteString(" ")
				b.WriteString(renderSnap(v))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestOptimizedEquivalence checks the acceptance criterion that
// optimization is observationally invisible: for every sample program,
// running the optimized and unoptimized compiles with identical external
// inputs produces byte-identical outputs and fault state.
func TestOptimizedEquivalence(t *testing.T) {
	files, err := filepath.Glob("testdata/*.esp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			plain := runOnce(t, f, true)
			opt := runOnce(t, f, false)
			if plain != opt {
				t.Errorf("optimized run diverges from unoptimized\nunoptimized:\n%s\noptimized:\n%s", plain, opt)
			}
		})
	}
}

// TestVMFaultReportsFileLine checks that a runtime fault on a program
// compiled from a (named) file points back at the ESP source line.
func TestVMFaultReportsFileLine(t *testing.T) {
	src := "process boom {\n    $x = 1;\n    assert( x == 2);\n}\n"
	prog, err := esplang.Compile(src, esplang.CompileOptions{Name: "boom", File: "boom.esp"})
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Machine(esplang.MachineConfig{})
	m.Run()
	f := m.Fault()
	if f == nil {
		t.Fatal("expected an assertion fault")
	}
	if !strings.Contains(f.Error(), "boom.esp:3") {
		t.Errorf("fault does not carry file:line: %q", f.Error())
	}
	if loc := f.Location(); !strings.HasPrefix(loc, "boom.esp:3:") {
		t.Errorf("Location() = %q, want boom.esp:3:...", loc)
	}
}

// TestMemSafetyCounterexampleReportsFileLine checks the §5.2 acceptance
// criterion end to end: the model checker finds the seeded use-after-free
// in the examples/memsafety model, the faulting VM state reports an ESP
// file:line, and the counterexample trace steps are annotated with source
// locations.
func TestMemSafetyCounterexampleReportsFileLine(t *testing.T) {
	res, err := vmmc.VerifyMemSafety(vmmc.BugUseAfterFree, esplang.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("seeded use-after-free not found")
	}
	if res.Violation.Fault == nil {
		t.Fatalf("violation has no VM fault: %s", res.Violation)
	}
	if !strings.Contains(res.Violation.Fault.Error(), "memsafety.esp:") {
		t.Errorf("VM fault does not report ESP file:line: %q", res.Violation.Fault.Error())
	}
	if len(res.Violation.Trace) == 0 {
		t.Fatal("violation has no counterexample trace")
	}
	annotated := 0
	for _, st := range res.Violation.Trace {
		if strings.Contains(st.Desc, "(memsafety.esp:") {
			annotated++
		}
	}
	if annotated == 0 {
		t.Errorf("no trace step carries a source location; last step: %q",
			res.Violation.Trace[len(res.Violation.Trace)-1].Desc)
	}
}

// TestGeneratedCHasLineDirectives checks that the C backend emits #line
// directives pointing at the ESP source when the program came from a file.
func TestGeneratedCHasLineDirectives(t *testing.T) {
	prog, err := esplang.CompileFile("testdata/pipeline.esp", esplang.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cSrc := prog.C(esplang.COptions{})
	if !strings.Contains(cSrc, `#line`) || !strings.Contains(cSrc, `"testdata/pipeline.esp"`) {
		t.Errorf("generated C lacks #line directives for the source file")
	}
	// An in-memory compile must stay free of #line noise.
	prog2, err := esplang.Compile(prog.Source, esplang.CompileOptions{Name: "pipeline"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prog2.C(esplang.COptions{}), "#line") {
		t.Errorf("in-memory compile unexpectedly emits #line directives")
	}
}
