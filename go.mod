module esplang

go 1.22
