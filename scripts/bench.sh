#!/bin/sh
# Record the PR's headline benchmarks — firmware latency/bandwidth and
# verifier throughput, baseline engine vs fused engine — into
# BENCH_PR4.json at the repository root. Commit the file so performance
# claims travel with the code.
#
# Usage:
#   scripts/bench.sh                 # engine-vs-engine numbers only
#   scripts/bench.sh -seed <gitref>  # also benchmark the pre-PR commit
#                                    # in a worktree and record the
#                                    # fused-over-seed speedups
# Extra arguments are passed through to cmd/benchrec.
set -eu
cd "$(dirname "$0")/.."

seed_file=""
wt=""
if [ "${1:-}" = "-seed" ]; then
    ref="$2"
    shift 2
    wt=$(mktemp -d /tmp/espseed.XXXXXX)
    git worktree add --detach --force "$wt" "$ref" >/dev/null
    echo "benchmarking seed $ref ..." >&2
    (cd "$wt" && go test -run xxx \
        -bench 'Fig5aLatency/vmmcESP|Fig5bBandwidth/vmmcESP/1024B|VerifyMemSafety|VerifyFirmwareModel' \
        -benchtime 2s .) | tee "$wt/seed_bench.txt" >&2
    seed_file="$wt/seed_bench.txt"
fi

if [ -n "$seed_file" ]; then
    go run ./cmd/benchrec -out BENCH_PR4.json -seed-bench "$seed_file" "$@"
else
    go run ./cmd/benchrec -out BENCH_PR4.json "$@"
fi

if [ -n "$wt" ]; then
    git worktree remove --force "$wt"
fi
