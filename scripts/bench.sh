#!/bin/sh
# Record the PR's headline benchmarks — firmware latency/bandwidth,
# verifier throughput across the four-tier engine matrix (baseline,
# fused, process-fused, AOT-compiled), and the verification workloads
# under ample-set partial-order reduction — into BENCH_PR10.json at the
# repository root. Commit the file so performance claims travel with
# the code.
#
# Usage:
#   scripts/bench.sh                 # full four-tier engine matrix
#   scripts/bench.sh -fuse procfused # one tier only (the engine axis:
#                                    # baseline | fused | procfused |
#                                    # compiled, or a comma list)
#   scripts/bench.sh -seed <gitref>  # also benchmark the pre-PR commit
#                                    # in a worktree and record the
#                                    # fused-over-seed and
#                                    # procfused-over-seed speedups
# Extra arguments are passed through to cmd/benchrec.
set -eu
cd "$(dirname "$0")/.."

engines=""
seed_file=""
wt=""
while [ $# -gt 0 ]; do
    case "$1" in
    -fuse)
        engines="$2"
        shift 2
        ;;
    -seed)
        ref="$2"
        shift 2
        wt=$(mktemp -d /tmp/espseed.XXXXXX)
        git worktree add --detach --force "$wt" "$ref" >/dev/null
        echo "benchmarking seed $ref ..." >&2
        (cd "$wt" && go test -run xxx \
            -bench 'Fig5aLatency/vmmcESP|Fig5bBandwidth/vmmcESP/1024B|VerifyMemSafety|VerifyFirmwareModel' \
            -benchtime 2s .) | tee "$wt/seed_bench.txt" >&2
        seed_file="$wt/seed_bench.txt"
        ;;
    *)
        break
        ;;
    esac
done

if [ -n "$engines" ]; then
    set -- -engines "$engines" "$@"
fi
if [ -n "$seed_file" ]; then
    set -- -seed-bench "$seed_file" "$@"
fi
go run ./cmd/benchrec -out BENCH_PR10.json "$@"

if [ -n "$wt" ]; then
    git worktree remove --force "$wt"
fi
